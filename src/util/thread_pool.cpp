#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <memory>

#include "obs/metrics.h"
#include "util/error.h"

namespace hsconas::util {

namespace {
// Pool health metrics: queue pressure (instantaneous + high-water) and the
// wall-clock cost of each dequeued task. One relaxed atomic per event.
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::gauge("hsconas.pool.queue_depth");
  return g;
}
obs::Gauge& queue_depth_peak_gauge() {
  static obs::Gauge& g = obs::gauge("hsconas.pool.queue_depth_peak");
  return g;
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    // Exactly-once join: a second shutdown (explicit call followed by the
    // destructor, or two racing callers) must not touch the threads
    // again. The winner flips joined_ under the lock and does the joins.
    if (joined_) return;
    joined_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::busy() {
  if (active_loops_.load(std::memory_order_acquire) > 0) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  return external_in_flight_ > 0;
}

void ThreadPool::submit(std::function<void()> task) {
  enqueue(std::move(task), /*external=*/true);
}

void ThreadPool::enqueue(std::function<void()> task, bool external) {
  static obs::Counter& submitted = obs::counter("hsconas.pool.tasks_submitted");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_) {
      // The pool is shut down (e.g. retired by configure_global while the
      // caller held a stale reference): no worker will ever drain the
      // queue, so parking the task there would lose it and leak
      // in_flight_. Degrade to inline execution.
      lock.unlock();
      task();
      return;
    }
    queue_.push(Task{std::move(task), external});
    ++in_flight_;
    if (external) ++external_in_flight_;
    const double depth = static_cast<double>(queue_.size());
    queue_depth_gauge().set(depth);
    queue_depth_peak_gauge().update_max(depth);
  }
  submitted.add();
  cv_task_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {

/// Per-parallel_for shared state. Helpers keep it (and the copied fn)
/// alive via shared_ptr, so a helper that wakes up after the loop already
/// finished just observes next >= n and returns without touching fn.
struct LoopState {
  /// Sentinel stored into `next` when an iteration throws: far above any
  /// real n, far enough below SIZE_MAX that racing fetch_adds cannot wrap.
  static constexpr std::size_t kAbort =
      std::numeric_limits<std::size_t>::max() / 2;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::function<void(std::size_t)> fn;
  std::mutex mutex;
  std::condition_variable cv_done;
  std::exception_ptr error;  ///< first thrown exception (guarded by mutex)
};

/// Mark `count` iterations finished and wake the issuing thread when the
/// whole range is accounted for.
void finish_iterations(LoopState& s, std::size_t count) {
  const std::size_t done =
      s.completed.fetch_add(count, std::memory_order_acq_rel) + count;
  if (done == s.n) {
    // The lock pairs with the cv wait so the notification cannot slip
    // between the waiter's predicate check and its sleep.
    std::lock_guard<std::mutex> lock(s.mutex);
    s.cv_done.notify_all();
  }
}

void run_loop_chunks(LoopState& s) {
  for (;;) {
    const std::size_t begin =
        s.next.fetch_add(s.chunk, std::memory_order_relaxed);
    if (begin >= s.n) return;
    const std::size_t end = std::min(begin + s.chunk, s.n);
    try {
      for (std::size_t i = begin; i < end; ++i) s.fn(i);
    } catch (...) {
      // Record the first exception, stop handing out new chunks, and
      // account for both this chunk and the never-to-be-claimed tail so
      // completed still sums to exactly n and the join below wakes up.
      // Claimed-but-unfinished chunks on other threads finish and count
      // themselves; a second thrower sees tail >= kAbort and contributes
      // only its own chunk.
      {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.error) s.error = std::current_exception();
      }
      const std::size_t tail = s.next.exchange(LoopState::kAbort,
                                               std::memory_order_acq_rel);
      const std::size_t unclaimed =
          tail < s.n ? s.n - tail : 0;
      finish_iterations(s, (end - begin) + unclaimed);
      return;
    }
    finish_iterations(s, end - begin);
  }
}

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  static obs::Counter& loops = obs::counter("hsconas.pool.parallel_for_calls");
  loops.add();
  if (n == 0) return;
  bool stopped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopped = stop_;
  }
  if (n == 1 || workers_.size() <= 1 || stopped) {
    // Inline fallback (trivial loop, single worker, or a pool that was
    // shut down under a cached reference): exceptions propagate directly,
    // matching the rethrow-after-quiesce contract of the threaded path.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Marks this pool busy() for the whole handout-to-quiescence window so
  // configure_global can refuse to retire a pool mid-loop.
  struct LoopGuard {
    std::atomic<std::size_t>& loops_count;
    explicit LoopGuard(std::atomic<std::size_t>& c) : loops_count(c) {
      loops_count.fetch_add(1, std::memory_order_acq_rel);
    }
    ~LoopGuard() { loops_count.fetch_sub(1, std::memory_order_acq_rel); }
  } loop_guard(active_loops_);

  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->chunk = std::max<std::size_t>(1, n / (workers_.size() * 4));
  state->fn = fn;

  // The caller is one executor, so enqueue at most workers_ helpers and
  // never more than there are chunks left for them.
  const std::size_t total_chunks = (n + state->chunk - 1) / state->chunk;
  const std::size_t helpers =
      std::min(workers_.size(), total_chunks > 0 ? total_chunks - 1 : 0);
  for (std::size_t t = 0; t < helpers; ++t) {
    enqueue([state] { run_loop_chunks(*state); }, /*external=*/false);
  }

  // Work-first join: drain chunks on this thread, then sleep only while
  // another thread is actively finishing its last chunk. Completion is
  // counted per iteration, never per helper task, so this never waits on a
  // task that is still sitting in the queue — that is what makes nested
  // parallel_for calls from pool threads deadlock-free.
  run_loop_chunks(*state);
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv_done.wait(lock, [&] {
      return state->completed.load(std::memory_order_acquire) == state->n;
    });
  }
  // The loop has fully quiesced: no thread holds a chunk, so rethrowing
  // here cannot leave an iteration running behind the caller's back.
  if (state->error) std::rethrow_exception(state->error);
}

namespace {

/// Global-pool slot: an atomic current pointer plus a graveyard that owns
/// every pool ever installed. Retired pools are shut down (workers
/// joined) but not freed until exit, so code that cached a global()
/// reference across a configure_global() keeps a valid — merely inert —
/// pool whose parallel_for falls back to caller-inline execution.
std::atomic<ThreadPool*>& global_slot() {
  static std::atomic<ThreadPool*> slot{nullptr};
  return slot;
}

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

std::vector<std::unique_ptr<ThreadPool>>& pool_graveyard() {
  static std::vector<std::unique_ptr<ThreadPool>> g;
  return g;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  ThreadPool* p = global_slot().load(std::memory_order_acquire);
  if (p != nullptr) return *p;
  std::lock_guard<std::mutex> lock(global_mutex());
  p = global_slot().load(std::memory_order_relaxed);
  if (p == nullptr) {
    pool_graveyard().push_back(std::make_unique<ThreadPool>());
    p = pool_graveyard().back().get();
    global_slot().store(p, std::memory_order_release);
  }
  return *p;
}

void ThreadPool::configure_global(std::size_t threads) {
  std::lock_guard<std::mutex> lock(global_mutex());
  ThreadPool* old = global_slot().load(std::memory_order_relaxed);
  if (old != nullptr) {
    // Mid-flight reconfiguration is a checked error, not a race: a caller
    // that is inside parallel_for (or has tasks queued) on the current
    // pool would have its workers joined out from under it. Long-lived
    // pool users — serving lanes above all — must be stopped first.
    // The window between this check and shutdown() is still covered by
    // the stale-reference degradation: submit()/parallel_for on a
    // stopped pool run inline.
    if (old->busy()) {
      throw Error(
          "ThreadPool::configure_global: global pool has work in flight; "
          "stop serving lanes / drain parallel_for callers before "
          "resizing");
    }
    old->shutdown();
  }
  pool_graveyard().push_back(std::make_unique<ThreadPool>(threads));
  global_slot().store(pool_graveyard().back().get(),
                      std::memory_order_release);
}

void ThreadPool::worker_loop() {
  static obs::Counter& executed = obs::counter("hsconas.pool.tasks_executed");
  static obs::Histogram& task_ms = obs::histogram("hsconas.pool.task_ms");
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      queue_depth_gauge().set(static_cast<double>(queue_.size()));
    }
    const auto t0 = std::chrono::steady_clock::now();
    task.fn();
    task_ms.record(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
    executed.add();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (task.external) --external_in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace hsconas::util
