#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace hsconas::util {

/// Minimal RFC-4180-ish CSV writer used by the bench harnesses to dump the
/// raw series behind every figure (so plots can be regenerated externally).
class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws hsconas::Error on failure.
  explicit CsvWriter(const std::string& path);

  /// Write a header or data row; fields are quoted when needed.
  void row(const std::vector<std::string>& fields);

  /// Convenience: numeric row (formatted with %.6g).
  void row(const std::vector<double>& fields);

  const std::string& path() const { return path_; }

 private:
  static std::string escape(const std::string& field);
  std::string path_;
  std::ofstream out_;
};

}  // namespace hsconas::util
