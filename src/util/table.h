#pragma once

#include <string>
#include <vector>

namespace hsconas::util {

/// ASCII table renderer used by the bench harnesses to print paper-style
/// tables (e.g., Table I rows) to stdout.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator with an optional section caption row
  /// spanning all columns (mirrors Table I's "Manually-Designed Models"
  /// group headers).
  void add_section(const std::string& caption);

  std::string render() const;

 private:
  struct Row {
    bool is_section = false;
    std::string caption;
    std::vector<std::string> cells;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace hsconas::util
