#include "util/cli.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.h"
#include "util/string_util.h"

namespace hsconas::util {

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {}

void Cli::add_option(const std::string& key, const std::string& default_value,
                     const std::string& help) {
  options_[key] = Option{default_value, help, false};
}

void Cli::add_flag(const std::string& key, const std::string& help) {
  options_[key] = Option{"false", help, true};
}

bool Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      throw InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string key = arg, value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    const auto it = options_.find(key);
    if (it == options_.end()) {
      throw InvalidArgument("unknown option --" + key + "\n" + usage());
    }
    if (it->second.is_flag && eq == std::string::npos) {
      values_[key] = "true";
    } else if (eq != std::string::npos) {
      values_[key] = value;
    } else if (i + 1 < argc) {
      values_[key] = argv[++i];
    } else {
      throw InvalidArgument("option --" + key + " requires a value");
    }
  }
  return true;
}

std::string Cli::get(const std::string& key) const {
  const auto declared = options_.find(key);
  HSCONAS_CHECK_MSG(declared != options_.end(),
                    "Cli::get of undeclared option " + key);
  const auto it = values_.find(key);
  return it != values_.end() ? it->second : declared->second.default_value;
}

long long Cli::get_int(const std::string& key) const {
  const std::string v = get(key);
  char* end = nullptr;
  const long long result = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw InvalidArgument("option --" + key + " expects an integer, got '" +
                          v + "'");
  }
  return result;
}

double Cli::get_double(const std::string& key) const {
  const std::string v = get(key);
  char* end = nullptr;
  const double result = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw InvalidArgument("option --" + key + " expects a number, got '" + v +
                          "'");
  }
  return result;
}

bool Cli::get_bool(const std::string& key) const {
  const std::string v = to_lower(get(key));
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw InvalidArgument("option --" + key + " expects a boolean, got '" + v +
                        "'");
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << description_ << "\n\noptions:\n";
  for (const auto& [key, opt] : options_) {
    os << "  --" << key;
    if (!opt.is_flag) os << "=<" << opt.default_value << ">";
    os << "\n      " << opt.help << "\n";
  }
  return os.str();
}

}  // namespace hsconas::util
