#pragma once

#include <sstream>
#include <string>

namespace hsconas::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Benches default to
/// kInfo; tests set kWarn to keep ctest output readable.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a message at `level` to stderr with a "[LEVEL elapsed]" prefix.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace hsconas::util

#define HSCONAS_LOG_DEBUG ::hsconas::util::detail::LogLine(::hsconas::util::LogLevel::kDebug)
#define HSCONAS_LOG_INFO ::hsconas::util::detail::LogLine(::hsconas::util::LogLevel::kInfo)
#define HSCONAS_LOG_WARN ::hsconas::util::detail::LogLine(::hsconas::util::LogLevel::kWarn)
#define HSCONAS_LOG_ERROR ::hsconas::util::detail::LogLine(::hsconas::util::LogLevel::kError)
