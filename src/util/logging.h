#pragma once

#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace hsconas::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Benches default to
/// kInfo; tests set kWarn to keep ctest output readable.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-insensitive);
/// throws hsconas::Error on anything else. Used by the CLI --log-level flag.
LogLevel parse_log_level(const std::string& name);

/// Structured key=value attachments for one log record.
using LogFields = std::vector<std::pair<std::string, std::string>>;

/// Emit a message at `level` to stderr with a "[LEVEL elapsed]" prefix,
/// followed by any fields rendered as " key=value". One fprintf under one
/// mutex per record, so concurrent calls (e.g. from ThreadPool workers)
/// never interleave mid-line. When a JSONL sink is set, the same record is
/// appended there as {"ts_s", "level", "msg", "fields"}.
void log_message(LogLevel level, const std::string& msg,
                 const LogFields& fields = {});

/// Mirror every emitted record to `path` as one JSON object per line
/// (JSONL). The file is opened for append; throws hsconas::Error if it
/// cannot be opened. Pass through clear_log_sink() to stop mirroring.
void set_log_sink(const std::string& path);
void clear_log_sink();

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str(), fields_); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  /// Attach a structured field: HSCONAS_LOG_INFO << "msg" then
  /// .kv("epoch", 3).kv("loss", 0.42). Values go through operator<<.
  template <typename T>
  LogLine& kv(const std::string& key, const T& value) {
    std::ostringstream vs;
    vs << value;
    fields_.emplace_back(key, vs.str());
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
  LogFields fields_;
};
}  // namespace detail

}  // namespace hsconas::util

#define HSCONAS_LOG_DEBUG ::hsconas::util::detail::LogLine(::hsconas::util::LogLevel::kDebug)
#define HSCONAS_LOG_INFO ::hsconas::util::detail::LogLine(::hsconas::util::LogLevel::kInfo)
#define HSCONAS_LOG_WARN ::hsconas::util::detail::LogLine(::hsconas::util::LogLevel::kWarn)
#define HSCONAS_LOG_ERROR ::hsconas::util::detail::LogLine(::hsconas::util::LogLevel::kError)
