#include "util/csv.h"

#include <cstdio>

#include "util/error.h"

namespace hsconas::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw Error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", fields[i]);
    out_ << buf;
  }
  out_ << '\n';
}

}  // namespace hsconas::util
