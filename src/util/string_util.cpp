#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace hsconas::util {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args2);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args2);
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, begin);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(begin));
      return parts;
    }
    parts.push_back(s.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string human_count(double v) {
  const char* suffix = "";
  if (v >= 1e9) {
    v /= 1e9;
    suffix = "G";
  } else if (v >= 1e6) {
    v /= 1e6;
    suffix = "M";
  } else if (v >= 1e3) {
    v /= 1e3;
    suffix = "K";
  }
  return format("%.2f%s", v, suffix);
}

}  // namespace hsconas::util
