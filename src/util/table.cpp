#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace hsconas::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HSCONAS_CHECK_MSG(!header_.empty(), "Table: header must not be empty");
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(Row{false, "", std::move(cells)});
}

void Table::add_section(const std::string& caption) {
  rows_.push_back(Row{true, caption, {}});
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.is_section) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::size_t total = 1;  // leading '|'
  for (std::size_t w : widths) total += w + 3;

  const auto hline = [&] {
    std::string s(total, '-');
    s.front() = '+';
    s.back() = '+';
    return s + "\n";
  };
  const auto render_cells = [&](const std::vector<std::string>& cells) {
    std::ostringstream os;
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
    return os.str();
  };

  std::ostringstream os;
  os << hline() << render_cells(header_) << hline();
  for (const auto& row : rows_) {
    if (row.is_section) {
      os << hline();
      std::string caption = "== " + row.caption + " ==";
      if (caption.size() > total - 4) caption.resize(total - 4);
      os << "| " << caption
         << std::string(total - 4 - caption.size(), ' ') << " |\n"
         << hline();
    } else {
      os << render_cells(row.cells);
    }
  }
  os << hline();
  return os.str();
}

}  // namespace hsconas::util
