#pragma once

#include <chrono>

namespace hsconas::util {

/// Wall-clock stopwatch on std::chrono::steady_clock (monotonic: immune to
/// system clock adjustments, so durations are always non-negative).
/// Starts at construction. For instrumenting named phases prefer
/// HSCONAS_TRACE_SCOPE (obs/trace.h), which feeds the exportable trace;
/// Timer is for ad-hoc measurement and tests.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch from zero.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset/lap.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

  /// Return the elapsed seconds AND restart — one call per loop iteration
  /// yields per-iteration durations with no drift (the restart uses the
  /// same clock sample that produced the return value).
  double reset_and_lap() {
    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return elapsed;
  }

  /// reset_and_lap() in milliseconds.
  double lap_millis() { return reset_and_lap() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hsconas::util
