#pragma once

#include <map>
#include <string>
#include <variant>
#include <vector>

namespace hsconas::util {

/// Tiny JSON value tree with a serializer and a minimal parser — enough to
/// persist search results, latency tables, and experiment manifests, and
/// (since the observability layer) to read back its own artifacts, e.g.
/// `obs_report` rendering a metrics snapshot. The parser accepts exactly
/// the JSON this class emits plus standard whitespace/escapes; it is not a
/// general-purpose validator.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(long i) : value_(static_cast<double>(i)) {}
  Json(long long i) : value_(static_cast<double>(i)) {}
  Json(unsigned long i) : value_(static_cast<double>(i)) {}
  Json(unsigned long long i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  /// Object field access (creates the field; converts null to object).
  Json& operator[](const std::string& key);

  /// Array append (converts null to array).
  void push_back(Json v);

  bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }

  /// Typed readers; throw hsconas::Error on type mismatch.
  bool as_bool() const;
  double as_double() const;
  const std::string& as_string() const;
  const Array& items() const;    ///< array elements
  const Object& fields() const;  ///< object members

  /// Object member lookup without insertion; nullptr when absent or when
  /// this value is not an object.
  const Json* find(const std::string& key) const;

  /// Parse a JSON document. Throws hsconas::Error on malformed input,
  /// trailing garbage, and numbers outside the RFC 8259 grammar —
  /// including "nan"/"inf" spellings and values that overflow to
  /// infinity (e.g. "1e999"). Non-finite doubles serialize as null, so
  /// every dump() output parses back.
  [[nodiscard]] static Json parse(const std::string& text);

  /// Parse the file at `path`; throws hsconas::Error on I/O failure.
  [[nodiscard]] static Json load(const std::string& path);

  /// Serialize with 2-space indentation.
  std::string dump(int indent = 2) const;

  /// Serialize to file; throws hsconas::Error on I/O failure.
  void save(const std::string& path, int indent = 2) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  static void append_escaped(std::string& out, const std::string& s);
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

}  // namespace hsconas::util
