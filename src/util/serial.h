#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hsconas::util {

/// Little-endian binary codec for checkpoint payloads.
///
/// ByteWriter appends typed values to an in-memory buffer; ByteReader
/// consumes the same buffer with every read bounds-checked *before* any
/// allocation or copy, so a corrupt or truncated length field raises a
/// clean Error instead of driving a multi-gigabyte allocation. All
/// variable-length reads take an explicit cap for the same reason.
///
/// The codec is deliberately dumb — fixed-width PODs, length-prefixed
/// strings and vectors, no schema — because the sectioned checkpoint
/// container (core/checkpoint.h) supplies the structure and integrity
/// (per-section CRC); this layer only has to be impossible to crash.

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { pod(v); }
  void u64(std::uint64_t v) { pod(v); }
  void i32(std::int32_t v) { pod(v); }
  void i64(std::int64_t v) { pod(v); }
  void f32(float v) { pod(v); }
  void f64(double v) { pod(v); }

  void bytes(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  /// u32 length prefix + raw bytes.
  void str(std::string_view s);

  /// u32 count prefix + per-element writes.
  void vec_i32(const std::vector<int>& v);
  void vec_f64(const std::vector<double>& v);
  void vec_u64(const std::vector<std::uint64_t>& v);
  void vec_f32(const float* data, std::size_t n);

  void rng_state(const std::array<std::uint64_t, 4>& s) {
    for (std::uint64_t w : s) u64(w);
  }

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void pod(const T& v) {
    buf_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  std::string buf_;
};

class ByteReader {
 public:
  /// Default cap for strings read via str(); far above any parameter or
  /// section name this library writes, far below anything that hurts.
  static constexpr std::size_t kMaxString = 1 << 16;
  /// Default element cap for vector reads.
  static constexpr std::size_t kMaxElements = 1u << 28;

  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32() { return pod<std::uint32_t>(); }
  std::uint64_t u64() { return pod<std::uint64_t>(); }
  std::int32_t i32() { return pod<std::int32_t>(); }
  std::int64_t i64() { return pod<std::int64_t>(); }
  float f32() { return pod<float>(); }
  double f64() { return pod<double>(); }

  void bytes(void* out, std::size_t n);

  /// Length-checked against both `max_len` and the remaining buffer before
  /// the string is allocated.
  std::string str(std::size_t max_len = kMaxString);

  std::vector<int> vec_i32(std::size_t max_elems = kMaxElements);
  std::vector<double> vec_f64(std::size_t max_elems = kMaxElements);
  std::vector<std::uint64_t> vec_u64(std::size_t max_elems = kMaxElements);
  /// Reads a u32 count that must equal `expect_n`, then fills `out`.
  void vec_f32_into(float* out, std::size_t expect_n);

  std::array<std::uint64_t, 4> rng_state();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  /// Throws if any bytes remain — payloads must be consumed exactly.
  void expect_done() const;

 private:
  template <typename T>
  T pod() {
    T v{};
    bytes(&v, sizeof(T));
    return v;
  }
  /// Validates a length prefix against a cap and the remaining bytes.
  std::size_t checked_count(std::size_t max_elems, std::size_t elem_size,
                            const char* what);

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected). `seed` chains multi-buffer checksums:
/// pass a previous call's return value to continue it.
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace hsconas::util
