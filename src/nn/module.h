#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace hsconas::nn {

struct QuantState;

/// A trainable tensor plus its gradient accumulator.
///
/// Weight sharing in the supernet works by module *identity*: every subnet
/// evaluation routes activations through the same Module objects, so they
/// read and update the same Parameters. Nothing is ever copied out.
struct Parameter {
  std::string name;
  tensor::Tensor value;
  tensor::Tensor grad;
  /// BN affine terms and biases are conventionally excluded from L2 decay.
  bool apply_weight_decay = true;

  Parameter() = default;
  Parameter(std::string n, tensor::Tensor v, bool decay = true)
      : name(std::move(n)),
        value(std::move(v)),
        grad(value.shape()),
        apply_weight_decay(decay) {}

  void zero_grad() { grad.zero(); }
  long numel() const { return value.numel(); }
};

/// Base class for all layers and blocks.
///
/// The autograd model is deliberately simple: modules cache whatever they
/// need during forward() and consume it in the next backward() call.
/// A module instance therefore supports exactly one in-flight
/// forward/backward pair — which matches how one-shot NAS training uses it
/// (one sampled path per step).
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Compute the output; caches activations needed by backward().
  virtual tensor::Tensor forward(const tensor::Tensor& x) = 0;

  /// Propagate the loss gradient; accumulates into Parameter::grad and
  /// returns the gradient w.r.t. the forward input.
  virtual tensor::Tensor backward(const tensor::Tensor& dy) = 0;

  /// Append raw pointers to this module's trainable parameters (and those
  /// of any children). Pointers stay valid for the module's lifetime.
  virtual void collect_params(std::vector<Parameter*>& out);

  /// Toggle training/eval behaviour (BatchNorm statistics etc.).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Depth-first traversal over this module and all children; used for
  /// cross-cutting operations (BN-statistics recalibration, diagnostics).
  virtual void visit(const std::function<void(Module&)>& fn) { fn(*this); }

  /// Post-training-quantization state, for modules that have an int8
  /// datapath (Conv2d, Linear). Null for everything else; the calibration
  /// driver and serializers discover quantizable layers through visit() +
  /// this hook, so they need no knowledge of concrete layer types.
  virtual QuantState* quant_state() { return nullptr; }

  virtual std::string name() const = 0;

  /// Total parameter element count (convenience for reports).
  long param_count();

 protected:
  bool training_ = true;
};

/// Chains child modules in order. Owns them.
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::string display_name)
      : display_name_(std::move(display_name)) {}

  /// Append a child; returns a raw observer pointer for later access.
  template <typename M>
  M* add(std::unique_ptr<M> child) {
    M* raw = child.get();
    children_.push_back(std::move(child));
    return raw;
  }

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  void collect_params(std::vector<Parameter*>& out) override;
  void set_training(bool training) override;
  void visit(const std::function<void(Module&)>& fn) override;
  std::string name() const override { return display_name_; }

  std::size_t size() const { return children_.size(); }
  Module& child(std::size_t i) { return *children_.at(i); }

 private:
  std::string display_name_ = "sequential";
  std::vector<std::unique_ptr<Module>> children_;
};

/// Pass-through layer; the "skip" operator of the search space.
class Identity : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x) override { return x; }
  tensor::Tensor backward(const tensor::Tensor& dy) override { return dy; }
  std::string name() const override { return "identity"; }
};

}  // namespace hsconas::nn
