#include "nn/mbconv_block.h"

#include "nn/activation.h"
#include "nn/batchnorm.h"

namespace hsconas::nn {

using tensor::Tensor;

MbConvChoiceBlock::MbConvChoiceBlock(double expansion, long kernel,
                                     long in_channels, long out_channels,
                                     long stride, util::Rng& rng,
                                     std::string display_name)
    : expansion_(expansion),
      kernel_(kernel),
      in_channels_(in_channels),
      out_channels_(out_channels),
      stride_(stride),
      mid_channels_(0),
      display_name_(std::move(display_name)) {
  if (stride != 1 && stride != 2) {
    throw InvalidArgument("MbConvChoiceBlock: stride must be 1 or 2");
  }
  if (stride == 1 && in_channels != out_channels) {
    throw InvalidArgument(
        "MbConvChoiceBlock: stride-1 blocks require in == out channels");
  }

  const bool is_skip = expansion <= 0.0;
  int idx = 0;
  const auto tag = [&](const char* what) {
    return display_name_ + "." + what + std::to_string(idx++);
  };

  if (is_skip) {
    if (stride == 1) {
      pure_identity_ = true;
      return;
    }
    // Reduction skip: minimal projection, as in the shuffle family.
    body_ = std::make_unique<Sequential>(display_name_ + ".skip_proj");
    body_->add(std::make_unique<Conv2d>(in_channels, in_channels, 3, 2, 1,
                                        in_channels, false, rng, tag("dw")));
    body_->add(std::make_unique<BatchNorm2d>(in_channels, 0.1, 1e-5,
                                             tag("bn")));
    body_->add(std::make_unique<Conv2d>(in_channels, out_channels, 1, 1, 0,
                                        1, false, rng, tag("pw")));
    body_->add(std::make_unique<BatchNorm2d>(out_channels, 0.1, 1e-5,
                                             tag("bn")));
    body_->add(std::make_unique<ReLU>());
    return;
  }

  mid_channels_ = std::max<long>(
      1, static_cast<long>(std::llround(expansion *
                                        static_cast<double>(in_channels))));
  residual_ = (stride == 1 && in_channels == out_channels);

  body_ = std::make_unique<Sequential>(display_name_ + ".body");
  // Expand.
  body_->add(std::make_unique<Conv2d>(in_channels, mid_channels_, 1, 1, 0, 1,
                                      false, rng, tag("pw")));
  body_->add(std::make_unique<BatchNorm2d>(mid_channels_, 0.1, 1e-5,
                                           tag("bn")));
  body_->add(std::make_unique<ReLU>());
  masks_.push_back(body_->add(std::make_unique<ChannelMask>(mid_channels_)));
  // Depthwise.
  body_->add(std::make_unique<Conv2d>(mid_channels_, mid_channels_, kernel,
                                      stride, kernel / 2, mid_channels_,
                                      false, rng, tag("dw")));
  body_->add(std::make_unique<BatchNorm2d>(mid_channels_, 0.1, 1e-5,
                                           tag("bn")));
  body_->add(std::make_unique<ReLU>());
  masks_.push_back(body_->add(std::make_unique<ChannelMask>(mid_channels_)));
  // Project (linear bottleneck: no activation, per MobileNetV2).
  body_->add(std::make_unique<Conv2d>(mid_channels_, out_channels, 1, 1, 0,
                                      1, false, rng, tag("pw")));
  body_->add(std::make_unique<BatchNorm2d>(out_channels, 0.1, 1e-5,
                                           tag("bn")));
}

void MbConvChoiceBlock::set_channel_factor(double factor) {
  if (factor <= 0.0 || factor > 1.0) {
    throw InvalidArgument("set_channel_factor: factor must be in (0, 1]");
  }
  channel_factor_ = factor;
  if (mid_channels_ == 0) return;
  const long active = scaled_channels(mid_channels_, factor);
  for (ChannelMask* m : masks_) m->set_active(active);
}

long MbConvChoiceBlock::active_mid_channels() const {
  if (mid_channels_ == 0) return 0;
  return scaled_channels(mid_channels_, channel_factor_);
}

Tensor MbConvChoiceBlock::forward(const Tensor& x) {
  if (pure_identity_) return x;
  Tensor y = body_->forward(x);
  if (residual_) y.add_(x);
  return y;
}

Tensor MbConvChoiceBlock::backward(const Tensor& dy) {
  if (pure_identity_) return dy;
  Tensor dx = body_->backward(dy);
  if (residual_) dx.add_(dy);  // the identity path's gradient
  return dx;
}

void MbConvChoiceBlock::collect_params(std::vector<Parameter*>& out) {
  if (body_) body_->collect_params(out);
}

void MbConvChoiceBlock::set_training(bool training) {
  Module::set_training(training);
  if (body_) body_->set_training(training);
}

void MbConvChoiceBlock::visit(const std::function<void(Module&)>& fn) {
  fn(*this);
  if (body_) body_->visit(fn);
}

}  // namespace hsconas::nn
