#pragma once

#include "obs/profiler.h"
#include "tensor/tensor.h"

namespace hsconas::nn::detail {

/// Shared obs::OpInfo builders for the leaf-module profiler hooks. Leaf
/// modules (conv/linear/bn/act/pool/shuffle/mask) open an obs::OpScope at
/// the top of forward/backward with one of these describe callbacks;
/// container modules (Sequential, choice blocks) deliberately carry no
/// hooks, so profiled scopes never nest and the per-op Workspace watermark
/// window stays unambiguous.
///
/// FLOP/byte figures are analytic per-call totals for the whole batch:
/// GEMM-backed ops count 2·MACs; elementwise ops count `flops_per_elem`
/// per input element with a read+write (8-byte) default traffic model.

/// Elementwise-style key from a tensor's NCHW (or lower-rank) shape.
inline obs::OpInfo elementwise_op_info(const char* op, const char* kind,
                                       const tensor::Tensor& x,
                                       double flops_per_elem,
                                       double bytes_per_elem = 8.0) {
  obs::OpInfo info;
  info.key.op = op;
  info.key.kind = kind;
  if (x.ndim() >= 1) info.key.batch = x.dim(0);
  if (x.ndim() >= 2) {
    info.key.in_ch = x.dim(1);
    info.key.out_ch = x.dim(1);
  }
  if (x.ndim() >= 4) {
    info.key.in_h = x.dim(2);
    info.key.in_w = x.dim(3);
  }
  const double numel = static_cast<double>(x.numel());
  info.flops = flops_per_elem * numel;
  info.bytes = bytes_per_elem * numel;
  return info;
}

}  // namespace hsconas::nn::detail
