#pragma once

#include <memory>
#include <vector>

#include "nn/choice_block.h"
#include "nn/conv2d.h"
#include "nn/mask.h"

namespace hsconas::nn {

/// The MBConv operator family (OpFamily::kMbConv): MobileNetV2-style
/// inverted residuals with searchable expansion width.
///
///   x ── pw expand (in→mid) ── dw k×k (s) ── pw project (mid→out) ──(+x)── y
///           BN ReLU mask        BN ReLU mask      BN
///
/// mid = round(c · e·in) where e is the op's nominal expansion ratio and c
/// is the paper's dynamic channel factor — masking the expansion channels
/// is the exact analogue of masking the shuffle branch's mid channels.
/// The residual add applies at stride 1 with in == out. The skip op is
/// Identity at stride 1 and a minimal dw+pw projection at stride 2
/// (mirroring the shuffle family's convention so K stays 5 everywhere).
class MbConvChoiceBlock : public ChoiceBlock {
 public:
  /// `expansion` <= 0 selects the skip operator; `kernel` is the depthwise
  /// kernel size for conv ops.
  MbConvChoiceBlock(double expansion, long kernel, long in_channels,
                    long out_channels, long stride, util::Rng& rng,
                    std::string display_name = "mbconv");

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  void collect_params(std::vector<Parameter*>& out) override;
  void set_training(bool training) override;
  void visit(const std::function<void(Module&)>& fn) override;
  std::string name() const override { return display_name_; }

  void set_channel_factor(double factor) override;
  double channel_factor() const override { return channel_factor_; }
  long max_mid_channels() const override { return mid_channels_; }
  long active_mid_channels() const override;
  long in_channels() const override { return in_channels_; }
  long out_channels() const override { return out_channels_; }
  long stride() const override { return stride_; }

  double expansion() const { return expansion_; }
  long kernel() const { return kernel_; }
  bool has_residual() const { return residual_; }

 private:
  double expansion_;
  long kernel_;
  long in_channels_, out_channels_, stride_, mid_channels_;
  double channel_factor_ = 1.0;
  bool residual_ = false;
  bool pure_identity_ = false;
  std::string display_name_;

  std::unique_ptr<Sequential> body_;
  std::vector<ChannelMask*> masks_;
};

}  // namespace hsconas::nn
