#include "nn/choice_block.h"

#include <iterator>

#include "nn/blocks.h"
#include "nn/mbconv_block.h"
#include "util/error.h"

namespace hsconas::nn {

namespace {

/// MBConv family op table: (expansion, kernel); expansion <= 0 == skip.
struct MbConvOp {
  double expansion;
  long kernel;
  const char* name;
};

constexpr MbConvOp kMbConvOps[] = {
    {3.0, 3, "mb_e3k3"}, {6.0, 3, "mb_e6k3"}, {3.0, 5, "mb_e3k5"},
    {6.0, 5, "mb_e6k5"}, {0.0, 3, "skip"},
};

}  // namespace

int family_num_ops(OpFamily family) {
  switch (family) {
    case OpFamily::kShuffleV2: return kNumBlockKinds;
    case OpFamily::kMbConv:
      return static_cast<int>(std::size(kMbConvOps));
  }
  return 0;
}

const char* family_name(OpFamily family) {
  switch (family) {
    case OpFamily::kShuffleV2: return "shufflev2";
    case OpFamily::kMbConv: return "mbconv";
  }
  return "?";
}

const char* family_op_name(OpFamily family, int op) {
  HSCONAS_CHECK_MSG(op >= 0 && op < family_num_ops(family),
                    "family_op_name: op out of range");
  switch (family) {
    case OpFamily::kShuffleV2:
      return block_kind_name(static_cast<BlockKind>(op));
    case OpFamily::kMbConv:
      return kMbConvOps[static_cast<std::size_t>(op)].name;
  }
  return "?";
}

bool family_op_is_skip(OpFamily family, int op) {
  switch (family) {
    case OpFamily::kShuffleV2:
      return static_cast<BlockKind>(op) == BlockKind::kSkip;
    case OpFamily::kMbConv:
      return kMbConvOps[static_cast<std::size_t>(op)].expansion <= 0.0;
  }
  return false;
}

std::unique_ptr<ChoiceBlock> make_family_block(OpFamily family, int op,
                                               long in_channels,
                                               long out_channels, long stride,
                                               util::Rng& rng,
                                               std::string display_name) {
  HSCONAS_CHECK_MSG(op >= 0 && op < family_num_ops(family),
                    "make_family_block: op out of range");
  switch (family) {
    case OpFamily::kShuffleV2:
      return std::make_unique<ShuffleChoiceBlock>(
          static_cast<BlockKind>(op), in_channels, out_channels, stride, rng,
          std::move(display_name));
    case OpFamily::kMbConv: {
      const MbConvOp& spec = kMbConvOps[static_cast<std::size_t>(op)];
      return std::make_unique<MbConvChoiceBlock>(
          spec.expansion, spec.kernel, in_channels, out_channels, stride,
          rng, std::move(display_name));
    }
  }
  throw InvalidArgument("make_family_block: unknown family");
}

}  // namespace hsconas::nn
