#include "nn/batchnorm.h"

#include <cmath>

#include "nn/op_profile.h"

namespace hsconas::nn {

using tensor::Tensor;

BatchNorm2d::BatchNorm2d(long channels, double momentum, double eps,
                         std::string display_name)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      display_name_(std::move(display_name)),
      gamma_(display_name_ + ".gamma", Tensor::ones({channels}),
             /*decay=*/false),
      beta_(display_name_ + ".beta", Tensor({channels}), /*decay=*/false),
      running_mean_({channels}),
      running_var_(Tensor::ones({channels})) {
  if (channels <= 0) throw InvalidArgument("BatchNorm2d: channels <= 0");
}

void BatchNorm2d::reset_running_stats() {
  running_mean_.zero();
  running_var_.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  // ~4 ops/element (subtract, scale, gamma, beta); stats passes push the
  // traffic above the plain read+write default.
  obs::OpScope prof([&] {
    return detail::elementwise_op_info("bn", "eltwise", x, 4.0, 12.0);
  });
  if (x.ndim() != 4 || x.dim(1) != channels_) {
    throw InvalidArgument("BatchNorm2d " + display_name_ +
                          ": bad input shape " + x.shape_str());
  }
  const long n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const long spatial = h * w;
  const double count = static_cast<double>(n * spatial);

  Tensor y(x.shape());
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);
  cached_n_ = n;
  cached_h_ = h;
  cached_w_ = w;

  for (long c = 0; c < channels_; ++c) {
    double mean = 0.0, var = 0.0;
    if (training_) {
      for (long s = 0; s < n; ++s) {
        const float* chan = x.data() + ((s * channels_ + c) * spatial);
        for (long i = 0; i < spatial; ++i) mean += chan[i];
      }
      mean /= count;
      for (long s = 0; s < n; ++s) {
        const float* chan = x.data() + ((s * channels_ + c) * spatial);
        for (long i = 0; i < spatial; ++i) {
          const double d = chan[i] - mean;
          var += d * d;
        }
      }
      var /= count;  // biased, as in standard BN forward
      running_mean_.at(c) = static_cast<float>(
          (1.0 - momentum_) * running_mean_.at(c) + momentum_ * mean);
      running_var_.at(c) = static_cast<float>(
          (1.0 - momentum_) * running_var_.at(c) + momentum_ * var);
    } else {
      mean = running_mean_.at(c);
      var = running_var_.at(c);
    }

    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
    cached_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float g = gamma_.value.at(c), b = beta_.value.at(c);
    const float fm = static_cast<float>(mean);
    for (long s = 0; s < n; ++s) {
      const float* chan = x.data() + ((s * channels_ + c) * spatial);
      float* xhat = cached_xhat_.data() + ((s * channels_ + c) * spatial);
      float* out = y.data() + ((s * channels_ + c) * spatial);
      for (long i = 0; i < spatial; ++i) {
        const float xh = (chan[i] - fm) * inv_std;
        xhat[i] = xh;
        out[i] = g * xh + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& dy) {
  obs::OpScope prof([&] {
    return detail::elementwise_op_info("bn.bwd", "eltwise", dy, 8.0, 16.0);
  });
  HSCONAS_CHECK_MSG(!cached_xhat_.empty(),
                    "BatchNorm2d::backward before forward");
  const long n = cached_n_, h = cached_h_, w = cached_w_;
  const long spatial = h * w;
  const double count = static_cast<double>(n * spatial);
  HSCONAS_CHECK_MSG(dy.ndim() == 4 && dy.dim(0) == n &&
                        dy.dim(1) == channels_ && dy.dim(2) == h &&
                        dy.dim(3) == w,
                    "BatchNorm2d::backward: dy shape mismatch");

  Tensor dx(dy.shape());
  for (long c = 0; c < channels_; ++c) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (long s = 0; s < n; ++s) {
      const float* grad = dy.data() + ((s * channels_ + c) * spatial);
      const float* xhat =
          cached_xhat_.data() + ((s * channels_ + c) * spatial);
      for (long i = 0; i < spatial; ++i) {
        sum_dy += grad[i];
        sum_dy_xhat += static_cast<double>(grad[i]) * xhat[i];
      }
    }
    gamma_.grad.at(c) += static_cast<float>(sum_dy_xhat);
    beta_.grad.at(c) += static_cast<float>(sum_dy);

    const float g = gamma_.value.at(c);
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(c)];
    const float mean_dy = static_cast<float>(sum_dy / count);
    const float mean_dy_xhat = static_cast<float>(sum_dy_xhat / count);

    for (long s = 0; s < n; ++s) {
      const float* grad = dy.data() + ((s * channels_ + c) * spatial);
      const float* xhat =
          cached_xhat_.data() + ((s * channels_ + c) * spatial);
      float* out = dx.data() + ((s * channels_ + c) * spatial);
      if (training_) {
        for (long i = 0; i < spatial; ++i) {
          out[i] = g * inv_std *
                   (grad[i] - mean_dy - xhat[i] * mean_dy_xhat);
        }
      } else {
        for (long i = 0; i < spatial; ++i) out[i] = g * inv_std * grad[i];
      }
    }
  }
  return dx;
}

void BatchNorm2d::collect_params(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

}  // namespace hsconas::nn
