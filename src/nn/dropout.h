#pragma once

#include "nn/module.h"
#include "util/rng.h"

namespace hsconas::nn {

/// Inverted dropout: during training each activation is zeroed with
/// probability p and survivors are scaled by 1/(1-p), so eval mode is the
/// identity. MobileNet-style classifiers conventionally apply dropout
/// before the final linear layer; the supernet head can enable it via
/// SearchSpaceConfig-independent construction.
class Dropout : public Module {
 public:
  /// p in [0, 1); seed fixes the mask stream for reproducibility.
  explicit Dropout(double p, std::uint64_t seed = 0xD20Full);

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  std::string name() const override { return "dropout"; }

  double p() const { return p_; }

 private:
  double p_;
  util::Rng rng_;
  tensor::Tensor mask_;  // scaled keep-mask from the last training forward
};

}  // namespace hsconas::nn
