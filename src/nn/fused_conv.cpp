#include "nn/fused_conv.h"

#include <atomic>
#include <cmath>

#include "obs/metrics.h"
#include "tensor/workspace.h"

namespace hsconas::nn {

namespace {
std::atomic<bool> g_inference_fusion{false};
}  // namespace

void set_inference_fusion(bool on) {
  g_inference_fusion.store(on, std::memory_order_relaxed);
}

bool inference_fusion_enabled() {
  return g_inference_fusion.load(std::memory_order_relaxed);
}

tensor::Tensor fused_conv_bn_act(Conv2d& conv, BatchNorm2d& bn,
                                 tensor::EpilogueAct act,
                                 const tensor::Tensor& x) {
  static obs::Counter& calls = obs::counter("hsconas.nn.fused_conv_calls");
  const long c = conv.out_channels();
  if (bn.channels() != c) {
    throw InvalidArgument("fused_conv_bn_act: conv out_channels " +
                          std::to_string(c) + " != bn channels " +
                          std::to_string(bn.channels()));
  }
  calls.add();

  tensor::Workspace& ws = tensor::Workspace::tls();
  tensor::Scratch fold = ws.take(static_cast<std::size_t>(2 * c));
  float* scale = fold.data();
  float* shift = fold.data() + c;
  const float* gamma = bn.gamma().value.data();
  const float* beta = bn.beta().value.data();
  const float* mean = bn.running_mean().data();
  const float* var = bn.running_var().data();
  const Parameter* bias = conv.bias();
  for (long i = 0; i < c; ++i) {
    // Same double-precision inv_std as BatchNorm2d's eval forward, so the
    // gamma==1 / mean==0 / bias-free fold is bit-identical to composing
    // the modules.
    const float inv_std = static_cast<float>(
        1.0 / std::sqrt(static_cast<double>(var[i]) + bn.eps()));
    const float s = gamma[i] * inv_std;
    const float b0 = bias != nullptr ? bias->value.data()[i] : 0.0f;
    scale[i] = s;
    shift[i] = beta[i] + s * (b0 - mean[i]);
  }
  return conv.forward_fused(x, scale, shift, act);
}

}  // namespace hsconas::nn
