#include "nn/activation.h"

#include "nn/op_profile.h"
#include "tensor/gemm.h"

namespace hsconas::nn {

using tensor::Tensor;

// Both activations evaluate through tensor::epilogue_apply — the same
// inline scalar formula the fused GEMM writeback uses — so the composed
// modules and the fused conv epilogue can never drift apart.

Tensor ReLU::forward(const Tensor& x) {
  obs::OpScope prof(
      [&] { return detail::elementwise_op_info("relu", "eltwise", x, 1.0); });
  Tensor y(x.shape());
  mask_ = Tensor(x.shape());
  const float* in = x.data();
  float* out = y.data();
  float* m = mask_.data();
  for (long i = 0; i < x.numel(); ++i) {
    out[i] = tensor::epilogue_apply(tensor::EpilogueAct::kReLU, in[i]);
    m[i] = in[i] > 0.0f ? 1.0f : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& dy) {
  obs::OpScope prof([&] {
    return detail::elementwise_op_info("relu.bwd", "eltwise", dy, 1.0);
  });
  HSCONAS_CHECK_MSG(!mask_.empty(), "ReLU::backward before forward");
  dy.check_same_shape(mask_, "ReLU::backward");
  Tensor dx = dy;
  dx.hadamard_(mask_);
  return dx;
}

Tensor HSwish::forward(const Tensor& x) {
  obs::OpScope prof([&] {
    return detail::elementwise_op_info("hswish", "eltwise", x, 4.0);
  });
  cached_input_ = x;
  Tensor y(x.shape());
  const float* in = x.data();
  float* out = y.data();
  for (long i = 0; i < x.numel(); ++i) {
    out[i] = tensor::epilogue_apply(tensor::EpilogueAct::kHSwish, in[i]);
  }
  return y;
}

Tensor HSwish::backward(const Tensor& dy) {
  obs::OpScope prof([&] {
    return detail::elementwise_op_info("hswish.bwd", "eltwise", dy, 4.0);
  });
  HSCONAS_CHECK_MSG(!cached_input_.empty(),
                    "HSwish::backward before forward");
  dy.check_same_shape(cached_input_, "HSwish::backward");
  Tensor dx(dy.shape());
  const float* in = cached_input_.data();
  const float* g = dy.data();
  float* out = dx.data();
  for (long i = 0; i < dy.numel(); ++i) {
    const float v = in[i];
    float d;
    if (v <= -3.0f) d = 0.0f;
    else if (v >= 3.0f) d = 1.0f;
    else d = (2.0f * v + 3.0f) / 6.0f;
    out[i] = g[i] * d;
  }
  return dx;
}

}  // namespace hsconas::nn
