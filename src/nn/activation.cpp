#include "nn/activation.h"

namespace hsconas::nn {

using tensor::Tensor;

Tensor ReLU::forward(const Tensor& x) {
  Tensor y(x.shape());
  mask_ = Tensor(x.shape());
  const float* in = x.data();
  float* out = y.data();
  float* m = mask_.data();
  for (long i = 0; i < x.numel(); ++i) {
    const bool pos = in[i] > 0.0f;
    out[i] = pos ? in[i] : 0.0f;
    m[i] = pos ? 1.0f : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& dy) {
  HSCONAS_CHECK_MSG(!mask_.empty(), "ReLU::backward before forward");
  dy.check_same_shape(mask_, "ReLU::backward");
  Tensor dx = dy;
  dx.hadamard_(mask_);
  return dx;
}

Tensor HSwish::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y(x.shape());
  const float* in = x.data();
  float* out = y.data();
  for (long i = 0; i < x.numel(); ++i) {
    const float v = in[i];
    float r6 = v + 3.0f;
    r6 = r6 < 0.0f ? 0.0f : (r6 > 6.0f ? 6.0f : r6);
    out[i] = v * r6 / 6.0f;
  }
  return y;
}

Tensor HSwish::backward(const Tensor& dy) {
  HSCONAS_CHECK_MSG(!cached_input_.empty(),
                    "HSwish::backward before forward");
  dy.check_same_shape(cached_input_, "HSwish::backward");
  Tensor dx(dy.shape());
  const float* in = cached_input_.data();
  const float* g = dy.data();
  float* out = dx.data();
  for (long i = 0; i < dy.numel(); ++i) {
    const float v = in[i];
    float d;
    if (v <= -3.0f) d = 0.0f;
    else if (v >= 3.0f) d = 1.0f;
    else d = (2.0f * v + 3.0f) / 6.0f;
    out[i] = g[i] * d;
  }
  return dx;
}

}  // namespace hsconas::nn
