#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace hsconas::nn {

/// Softmax cross-entropy over (N, num_classes) logits.
struct LossResult {
  double loss = 0.0;          ///< mean over the batch
  tensor::Tensor grad;        ///< d loss / d logits, already divided by N
  std::size_t correct_top1 = 0;
  std::size_t correct_top5 = 0;
};

/// Numerically stable (max-subtracted) softmax cross-entropy with optional
/// label smoothing. Also reports top-1/top-5 hit counts so training loops
/// get accuracy for free.
LossResult cross_entropy(const tensor::Tensor& logits,
                         const std::vector<int>& labels,
                         double label_smoothing = 0.0);

/// Row-wise softmax (used by tests and the example apps for reporting
/// class probabilities).
tensor::Tensor softmax(const tensor::Tensor& logits);

}  // namespace hsconas::nn
