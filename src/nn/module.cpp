#include "nn/module.h"

namespace hsconas::nn {

void Module::collect_params(std::vector<Parameter*>& out) { (void)out; }

long Module::param_count() {
  std::vector<Parameter*> ps;
  collect_params(ps);
  long total = 0;
  for (const Parameter* p : ps) total += p->numel();
  return total;
}

tensor::Tensor Sequential::forward(const tensor::Tensor& x) {
  tensor::Tensor h = x;
  for (auto& child : children_) h = child->forward(h);
  return h;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& dy) {
  tensor::Tensor g = dy;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_params(std::vector<Parameter*>& out) {
  for (auto& child : children_) child->collect_params(out);
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& child : children_) child->set_training(training);
}

void Sequential::visit(const std::function<void(Module&)>& fn) {
  fn(*this);
  for (auto& child : children_) child->visit(fn);
}

}  // namespace hsconas::nn
