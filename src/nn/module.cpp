#include "nn/module.h"

#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/fused_conv.h"

namespace hsconas::nn {

void Module::collect_params(std::vector<Parameter*>& out) { (void)out; }

long Module::param_count() {
  std::vector<Parameter*> ps;
  collect_params(ps);
  long total = 0;
  for (const Parameter* p : ps) total += p->numel();
  return total;
}

tensor::Tensor Sequential::forward(const tensor::Tensor& x) {
  tensor::Tensor h = x;
  const bool fuse = !training_ && inference_fusion_enabled();
  for (std::size_t i = 0; i < children_.size(); ++i) {
    // Eval-mode peephole (opt-in via set_inference_fusion): a
    // Conv2d → BatchNorm2d [→ ReLU | HSwish] run collapses into one
    // fused epilogue pass. Never taken in training mode — the fused path
    // caches no activations for backward.
    if (fuse && i + 1 < children_.size()) {
      auto* conv = dynamic_cast<Conv2d*>(children_[i].get());
      auto* bn = conv != nullptr
                     ? dynamic_cast<BatchNorm2d*>(children_[i + 1].get())
                     : nullptr;
      if (conv != nullptr && bn != nullptr) {
        tensor::EpilogueAct act = tensor::EpilogueAct::kNone;
        std::size_t consumed = 2;
        if (i + 2 < children_.size()) {
          if (dynamic_cast<ReLU*>(children_[i + 2].get()) != nullptr) {
            act = tensor::EpilogueAct::kReLU;
            consumed = 3;
          } else if (dynamic_cast<HSwish*>(children_[i + 2].get()) !=
                     nullptr) {
            act = tensor::EpilogueAct::kHSwish;
            consumed = 3;
          }
        }
        h = fused_conv_bn_act(*conv, *bn, act, h);
        i += consumed - 1;
        continue;
      }
    }
    h = children_[i]->forward(h);
  }
  return h;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& dy) {
  tensor::Tensor g = dy;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_params(std::vector<Parameter*>& out) {
  for (auto& child : children_) child->collect_params(out);
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& child : children_) child->set_training(training);
}

void Sequential::visit(const std::function<void(Module&)>& fn) {
  fn(*this);
  for (auto& child : children_) child->visit(fn);
}

}  // namespace hsconas::nn
