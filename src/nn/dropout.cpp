#include "nn/dropout.h"

namespace hsconas::nn {

using tensor::Tensor;

Dropout::Dropout(double p, std::uint64_t seed) : p_(p), rng_(seed) {
  if (p < 0.0 || p >= 1.0) {
    throw InvalidArgument("Dropout: p must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& x) {
  if (!training_ || p_ == 0.0) {
    mask_ = Tensor();  // identity: no mask to apply in backward
    return x;
  }
  mask_ = Tensor(x.shape());
  const float scale = static_cast<float>(1.0 / (1.0 - p_));
  for (long i = 0; i < mask_.numel(); ++i) {
    mask_.flat()[static_cast<std::size_t>(i)] =
        rng_.bernoulli(p_) ? 0.0f : scale;
  }
  Tensor y = x;
  y.hadamard_(mask_);
  return y;
}

Tensor Dropout::backward(const Tensor& dy) {
  if (mask_.empty()) return dy;  // eval or p == 0 forward
  Tensor dx = dy;
  dx.hadamard_(mask_);
  return dx;
}

}  // namespace hsconas::nn
