#include "nn/shuffle.h"

#include <cstring>

#include "nn/op_profile.h"

namespace hsconas::nn {

using tensor::Tensor;

ChannelShuffle::ChannelShuffle(long groups) : groups_(groups) {
  if (groups <= 0) throw InvalidArgument("ChannelShuffle: groups <= 0");
}

namespace {
Tensor shuffle_impl(const Tensor& x, long groups, bool inverse) {
  if (x.ndim() != 4) {
    throw InvalidArgument("ChannelShuffle: expected NCHW, got " +
                          x.shape_str());
  }
  const long n = x.dim(0), c = x.dim(1), spatial = x.dim(2) * x.dim(3);
  if (c % groups != 0) {
    throw InvalidArgument("ChannelShuffle: channels not divisible by groups");
  }
  const long per = c / groups;
  Tensor y(x.shape());
  for (long s = 0; s < n; ++s) {
    for (long src = 0; src < c; ++src) {
      // forward: channel (g, i) -> (i, g); inverse swaps the roles.
      long dst;
      if (!inverse) {
        const long g = src / per, i = src % per;
        dst = i * groups + g;
      } else {
        const long i = src / groups, g = src % groups;
        dst = g * per + i;
      }
      std::memcpy(y.data() + ((s * c + dst) * spatial),
                  x.data() + ((s * c + src) * spatial),
                  static_cast<std::size_t>(spatial) * sizeof(float));
    }
  }
  return y;
}
}  // namespace

Tensor ChannelShuffle::forward(const Tensor& x) {
  obs::OpScope prof([&] {
    return detail::elementwise_op_info("channel_shuffle", "shuffle", x, 0.0);
  });
  return shuffle_impl(x, groups_, /*inverse=*/false);
}

Tensor ChannelShuffle::backward(const Tensor& dy) {
  obs::OpScope prof([&] {
    return detail::elementwise_op_info("channel_shuffle.bwd", "shuffle", dy,
                                      0.0);
  });
  return shuffle_impl(dy, groups_, /*inverse=*/true);
}

void split_channels(const Tensor& x, long left_channels, Tensor& left,
                    Tensor& right) {
  if (x.ndim() != 4) {
    throw InvalidArgument("split_channels: expected NCHW");
  }
  const long n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  if (left_channels <= 0 || left_channels >= c) {
    throw InvalidArgument("split_channels: bad split point");
  }
  const long spatial = h * w;
  const long rc = c - left_channels;
  left = Tensor({n, left_channels, h, w});
  right = Tensor({n, rc, h, w});
  for (long s = 0; s < n; ++s) {
    std::memcpy(left.data() + s * left_channels * spatial,
                x.data() + (s * c) * spatial,
                static_cast<std::size_t>(left_channels * spatial) *
                    sizeof(float));
    std::memcpy(right.data() + s * rc * spatial,
                x.data() + (s * c + left_channels) * spatial,
                static_cast<std::size_t>(rc * spatial) * sizeof(float));
  }
}

Tensor concat_channels(const Tensor& left, const Tensor& right) {
  if (left.ndim() != 4 || right.ndim() != 4 || left.dim(0) != right.dim(0) ||
      left.dim(2) != right.dim(2) || left.dim(3) != right.dim(3)) {
    throw InvalidArgument("concat_channels: incompatible shapes " +
                          left.shape_str() + " vs " + right.shape_str());
  }
  const long n = left.dim(0), lc = left.dim(1), rc = right.dim(1);
  const long h = left.dim(2), w = left.dim(3);
  const long spatial = h * w;
  Tensor y({n, lc + rc, h, w});
  for (long s = 0; s < n; ++s) {
    std::memcpy(y.data() + (s * (lc + rc)) * spatial,
                left.data() + s * lc * spatial,
                static_cast<std::size_t>(lc * spatial) * sizeof(float));
    std::memcpy(y.data() + (s * (lc + rc) + lc) * spatial,
                right.data() + s * rc * spatial,
                static_cast<std::size_t>(rc * spatial) * sizeof(float));
  }
  return y;
}

}  // namespace hsconas::nn
