#include "nn/quantize.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/serial.h"

namespace hsconas::nn {

namespace {

// Relaxed is sufficient for both switches: they are configuration toggled
// between inference/calibration phases, not synchronization. Mirrors
// g_inference_fusion in fused_conv.cpp.
std::atomic<InferenceDType> g_inference_dtype{InferenceDType::kF32};
std::atomic<bool> g_calibration_mode{false};

constexpr std::uint32_t kCalibrationFormatVersion = 1;

}  // namespace

void set_inference_dtype(InferenceDType dtype) {
  g_inference_dtype.store(dtype, std::memory_order_relaxed);
}

InferenceDType inference_dtype() {
  return g_inference_dtype.load(std::memory_order_relaxed);
}

const char* inference_dtype_name(InferenceDType dtype) {
  switch (dtype) {
    case InferenceDType::kF32:
      return "f32";
    case InferenceDType::kI8:
      return "int8";
  }
  return "?";
}

InferenceDType parse_inference_dtype(const std::string& name) {
  if (name == "f32" || name == "fp32" || name == "float32") {
    return InferenceDType::kF32;
  }
  if (name == "int8" || name == "i8") return InferenceDType::kI8;
  throw InvalidArgument("unknown inference dtype '" + name +
                        "' (expected f32 or int8)");
}

void set_calibration_mode(bool on) {
  g_calibration_mode.store(on, std::memory_order_relaxed);
}

bool calibration_mode() {
  return g_calibration_mode.load(std::memory_order_relaxed);
}

void MinMaxObserver::observe(const float* x, std::size_t n) {
  if (n == 0) return;
  float lo = x[0], hi = x[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  if (seen_) {
    min_ = std::min(min_, lo);
    max_ = std::max(max_, hi);
  } else {
    min_ = lo;
    max_ = hi;
    seen_ = true;
  }
}

void MinMaxObserver::reset() {
  min_ = max_ = 0.0f;
  seen_ = false;
}

tensor::QuantParams MinMaxObserver::params() const {
  // Widen to include 0 so zero-padding and ReLU floors quantize exactly
  // (real 0.0 maps to the zero_point code with no rounding).
  const float lo = std::min(0.0f, min_);
  const float hi = std::max(0.0f, max_);
  tensor::QuantParams p;
  if (!seen_ || hi - lo <= 0.0f || !std::isfinite(hi - lo)) {
    return p;  // identity quantizer {1, 0}
  }
  p.scale = (hi - lo) / 255.0f;
  const float z = std::nearbyintf(-lo / p.scale);
  p.zero_point =
      std::clamp(static_cast<std::int32_t>(z), std::int32_t{0},
                 std::int32_t{255});
  return p;
}

void QuantState::freeze(const tensor::Tensor& weight, long rows) {
  tensor::QuantParams act = observer.params();
  HSCONAS_CHECK_MSG(rows > 0 && weight.numel() % rows == 0,
                    "QuantState::freeze: bad row count");
  const long cols = weight.numel() / rows;
  // Calibration-time (cold path) buffer that outlives this call as
  // QuantState::weight_scales, so a Workspace lease cannot back it.
  // hsconas-lint-allow(scratch-discipline)
  std::vector<float> scales(static_cast<std::size_t>(rows));
  const float* w = weight.data();
  for (long c = 0; c < rows; ++c) {
    float peak = 0.0f;
    for (long t = 0; t < cols; ++t) {
      peak = std::max(peak, std::abs(w[c * cols + t]));
    }
    // Symmetric per-channel: |q| <= 127 keeps -128 unused so the VNNI
    // accumulation bound (127 * 255 * k) holds. An all-zero channel gets
    // scale 1 (its codes are all 0 regardless).
    scales[static_cast<std::size_t>(c)] =
        peak > 0.0f ? peak / 127.0f : 1.0f;
  }
  freeze_from(weight, rows, act, scales);
}

void QuantState::freeze_from(const tensor::Tensor& weight, long rows,
                             tensor::QuantParams act,
                             // hsconas-lint-allow(scratch-discipline)
                             const std::vector<float>& scales) {
  HSCONAS_CHECK_MSG(rows > 0 && weight.numel() % rows == 0,
                    "QuantState::freeze_from: bad row count");
  if (scales.size() != static_cast<std::size_t>(rows)) {
    throw InvalidArgument("calibration table: weight-scale count " +
                          std::to_string(scales.size()) +
                          " != out-channel count " + std::to_string(rows));
  }
  const long cols = weight.numel() / rows;
  input = act;
  weight_scales = scales;
  qweight = tensor::Tensor::quantized(weight.shape(), tensor::DType::kI8,
                                      tensor::QuantParams{1.0f, 0});
  weight_row_sums.assign(static_cast<std::size_t>(rows), 0);
  const float* w = weight.data();
  std::int8_t* q = qweight.i8_data();
  for (long c = 0; c < rows; ++c) {
    const float inv = 1.0f / weight_scales[static_cast<std::size_t>(c)];
    std::int32_t sum = 0;
    for (long t = 0; t < cols; ++t) {
      const float v = std::nearbyintf(w[c * cols + t] * inv);
      const std::int32_t code = std::clamp(
          static_cast<std::int32_t>(v), std::int32_t{-127}, std::int32_t{127});
      q[c * cols + t] = static_cast<std::int8_t>(code);
      sum += code;
    }
    weight_row_sums[static_cast<std::size_t>(c)] = sum;
  }
  ready = true;
}

void QuantState::reset() {
  observer.reset();
  input = tensor::QuantParams{};
  qweight = tensor::Tensor();
  weight_scales.clear();
  weight_row_sums.clear();
  ready = false;
}

void quantize_u8(const float* x, std::size_t n, tensor::QuantParams p,
                 std::uint8_t* out) {
  const float inv = 1.0f / p.scale;
  const float z = static_cast<float>(p.zero_point);
  for (std::size_t i = 0; i < n; ++i) {
    const float v = std::nearbyintf(x[i] * inv) + z;
    out[i] = static_cast<std::uint8_t>(
        std::clamp(v, 0.0f, 255.0f));
  }
}

float dequantize_u8(std::uint8_t q, tensor::QuantParams p) {
  return p.scale *
         static_cast<float>(static_cast<std::int32_t>(q) - p.zero_point);
}

std::size_t calibrate_with(
    const std::function<void(const std::function<void(Module&)>&)>& visit,
    const std::function<void(const tensor::Tensor&)>& forward,
    const std::vector<tensor::Tensor>& batches) {
  if (batches.empty()) {
    throw InvalidArgument("calibrate: no calibration batches");
  }
  static obs::Counter& runs = obs::counter("hsconas.quant.calibrations");
  const bool was_calibrating = calibration_mode();
  const InferenceDType was_dtype = inference_dtype();
  set_inference_dtype(InferenceDType::kF32);  // observe fp32 activations
  set_calibration_mode(true);
  visit([](Module& m) {
    if (QuantState* q = m.quant_state()) q->reset();
  });
  try {
    for (const tensor::Tensor& batch : batches) forward(batch);
  } catch (...) {
    set_calibration_mode(was_calibrating);
    set_inference_dtype(was_dtype);
    throw;
  }
  set_calibration_mode(was_calibrating);
  set_inference_dtype(was_dtype);

  std::size_t frozen = 0;
  visit([&](Module& m) {
    QuantState* q = m.quant_state();
    if (q == nullptr || !q->observer.seen()) return;
    std::vector<Parameter*> params;
    m.collect_params(params);
    HSCONAS_CHECK_MSG(!params.empty(), "quantizable layer has no weight");
    // By convention the first collected parameter is the weight matrix
    // and its leading dimension is the out-channel axis.
    q->freeze(params[0]->value, params[0]->value.dim(0));
    ++frozen;
  });
  runs.add();
  return frozen;
}

std::size_t calibrate(Module& root,
                      const std::vector<tensor::Tensor>& batches) {
  const bool was_training = root.training();
  root.set_training(false);
  std::size_t frozen = 0;
  try {
    frozen = calibrate_with(
        [&root](const std::function<void(Module&)>& fn) { root.visit(fn); },
        [&root](const tensor::Tensor& batch) { root.forward(batch); },
        batches);
  } catch (...) {
    root.set_training(was_training);
    throw;
  }
  root.set_training(was_training);
  return frozen;
}

void export_calibration(Module& root, util::ByteWriter& w) {
  w.u32(kCalibrationFormatVersion);
  std::uint64_t count = 0;
  root.visit([&](Module& m) {
    if (m.quant_state() != nullptr) ++count;
  });
  w.u64(count);
  root.visit([&](Module& m) {
    QuantState* q = m.quant_state();
    if (q == nullptr) return;
    w.u8(q->ready ? 1 : 0);
    if (!q->ready) return;
    w.f32(q->input.scale);
    w.i32(q->input.zero_point);
    w.u64(q->weight_scales.size());
    w.vec_f32(q->weight_scales.data(), q->weight_scales.size());
  });
}

void import_calibration(Module& root, util::ByteReader& r) {
  const std::uint32_t version = r.u32();
  if (version != kCalibrationFormatVersion) {
    throw InvalidArgument("calibration table: unsupported format version " +
                          std::to_string(version));
  }
  std::uint64_t expect = 0;
  root.visit([&](Module& m) {
    if (m.quant_state() != nullptr) ++expect;
  });
  const std::uint64_t count = r.u64();
  if (count != expect) {
    throw InvalidArgument(
        "calibration table: layer count " + std::to_string(count) +
        " does not match this model (" + std::to_string(expect) + ")");
  }
  root.visit([&](Module& m) {
    QuantState* q = m.quant_state();
    if (q == nullptr) return;
    q->reset();
    if (r.u8() == 0) return;
    tensor::QuantParams act;
    act.scale = r.f32();
    act.zero_point = r.i32();
    if (!(act.scale > 0.0f) || !std::isfinite(act.scale) ||
        act.zero_point < 0 || act.zero_point > 255) {
      throw InvalidArgument("calibration table: corrupt activation params");
    }
    const std::uint64_t rows = r.u64();
    std::vector<Parameter*> params;
    m.collect_params(params);
    HSCONAS_CHECK_MSG(!params.empty(), "quantizable layer has no weight");
    tensor::Tensor& weight = params[0]->value;
    if (rows != static_cast<std::uint64_t>(weight.dim(0))) {
      throw InvalidArgument("calibration table: channel count mismatch");
    }
    // Checkpoint-restore (cold path) buffer handed to freeze_from.
    // hsconas-lint-allow(scratch-discipline)
    std::vector<float> scales(static_cast<std::size_t>(rows));
    r.vec_f32_into(scales.data(), scales.size());
    for (float s : scales) {
      if (!(s > 0.0f) || !std::isfinite(s)) {
        throw InvalidArgument("calibration table: corrupt weight scale");
      }
    }
    q->freeze_from(weight, weight.dim(0), act, scales);
  });
}

}  // namespace hsconas::nn
