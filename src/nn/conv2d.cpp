#include "nn/conv2d.h"

#include <algorithm>
#include <cmath>

#include "nn/op_profile.h"
#include "tensor/gemm.h"
#include "tensor/gemm_i8.h"
#include "tensor/workspace.h"
#include "util/thread_pool.h"

namespace hsconas::nn {

using tensor::ConvGeom;
using tensor::Tensor;

namespace {

/// Profiler describe callback payload. `work_mult` scales the analytic
/// single-pass work: 1 for forward, 2 for backward (dW and dX GEMMs).
/// Defensive about shapes — forward_impl's own validation throws after
/// the scope opens, so a malformed input must not crash the hook.
obs::OpInfo conv_op_info(const Conv2d& conv, const Tensor& x, const char* op,
                         double work_mult) {
  obs::OpInfo info;
  info.key.op = op;
  const bool depthwise = conv.groups() == conv.in_channels() &&
                         conv.groups() == conv.out_channels();
  info.key.kind = depthwise ? "dwconv" : "conv";
  info.key.in_ch = conv.in_channels();
  info.key.out_ch = conv.out_channels();
  info.key.kernel = conv.kernel();
  info.key.stride = conv.stride();
  info.key.groups = conv.groups();
  if (x.ndim() != 4 || x.dim(1) != conv.in_channels()) return info;
  const long n = x.dim(0), h = x.dim(2), w = x.dim(3);
  info.key.batch = n;
  info.key.in_h = h;
  info.key.in_w = w;
  ConvGeom geom{conv.in_channels() / conv.groups(), h, w, conv.kernel(),
                conv.stride(), conv.pad()};
  if (geom.out_h() <= 0 || geom.out_w() <= 0) return info;
  const double batch = static_cast<double>(n);
  const double macs = static_cast<double>(conv.macs(h, w));
  const double out_numel = batch * static_cast<double>(conv.out_channels()) *
                           static_cast<double>(geom.out_h()) *
                           static_cast<double>(geom.out_w());
  const double weight_numel =
      static_cast<double>(conv.out_channels()) *
      static_cast<double>(conv.in_channels() / conv.groups()) *
      static_cast<double>(conv.kernel() * conv.kernel());
  info.flops = work_mult * 2.0 * macs * batch;
  info.bytes = work_mult * 4.0 *
               (static_cast<double>(x.numel()) + out_numel + weight_numel);
  return info;
}

}  // namespace

Conv2d::Conv2d(long in_channels, long out_channels, long kernel, long stride,
               long pad, long groups, bool bias, util::Rng& rng,
               std::string display_name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      groups_(groups),
      has_bias_(bias),
      display_name_(std::move(display_name)) {
  if (in_channels <= 0 || out_channels <= 0 || kernel <= 0 || stride <= 0 ||
      pad < 0 || groups <= 0) {
    throw InvalidArgument("Conv2d: non-positive geometry");
  }
  if (in_channels % groups != 0 || out_channels % groups != 0) {
    throw InvalidArgument("Conv2d: channels not divisible by groups");
  }
  const long fan_in = (in_channels / groups) * kernel * kernel;
  const float std_dev =
      std::sqrt(2.0f / static_cast<float>(fan_in));  // Kaiming, ReLU gain
  weight_ = Parameter(
      display_name_ + ".weight",
      Tensor::normal({out_channels, in_channels / groups, kernel, kernel},
                     0.0f, std_dev, rng),
      /*decay=*/true);
  if (has_bias_) {
    bias_ = Parameter(display_name_ + ".bias", Tensor({out_channels}),
                      /*decay=*/false);
  }
}

Tensor Conv2d::forward(const Tensor& x) {
  obs::OpScope prof([&] { return conv_op_info(*this, x, "conv2d", 1.0); });
  // Fold the bias into the GEMM epilogue (scale 1, shift b, no act): the
  // sum and the single bias add happen in the same order as a separate
  // bias pass would do them, so training numbers are unchanged — minus
  // one full pass over the output tensor.
  tensor::GemmEpilogue ep;
  if (has_bias_) ep.shift = bias_.value.data();
  Tensor y = forward_impl(x, has_bias_ ? &ep : nullptr);
  cached_input_ = x;
  return y;
}

Tensor Conv2d::forward_fused(const Tensor& x, const float* scale,
                             const float* shift, tensor::EpilogueAct act) {
  obs::OpScope prof(
      [&] { return conv_op_info(*this, x, "conv2d.fused", 1.0); });
  tensor::GemmEpilogue ep;
  ep.scale = scale;
  ep.shift = shift;
  ep.act = act;
  return forward_impl(x, &ep);
}

Tensor Conv2d::forward_impl(const Tensor& x, const tensor::GemmEpilogue* ep) {
  if (x.ndim() != 4 || x.dim(1) != in_channels_) {
    throw InvalidArgument("Conv2d " + display_name_ + ": bad input shape " +
                          x.shape_str());
  }
  const long n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const long cin_g = in_channels_ / groups_;
  const long cout_g = out_channels_ / groups_;
  ConvGeom geom{cin_g, h, w, kernel_, stride_, pad_};
  const long oh = geom.out_h(), ow = geom.out_w();
  if (oh <= 0 || ow <= 0) {
    throw InvalidArgument("Conv2d " + display_name_ +
                          ": output collapses to zero size");
  }

  if (!training_) {
    // The dtype seam. Calibration observes the fp32 input; the int8 path
    // takes over only for calibrated layers under the process-wide dtype
    // switch (and only at reduction depths the int32 accumulators cover —
    // others keep computing fp32, so mixed-readiness models stay correct).
    if (calibration_mode()) {
      quant_.observer.observe(x.data(), static_cast<std::size_t>(x.numel()));
    }
    if (inference_dtype() == InferenceDType::kI8 && quant_.ready &&
        static_cast<std::size_t>(cin_g * kernel_ * kernel_) <=
            tensor::kGemmI8MaxK) {
      return forward_quant_impl(x, ep);
    }
  }

  Tensor y({n, out_channels_, oh, ow});
  const long col_rows = cin_g * kernel_ * kernel_;
  const long ohw = oh * ow;
  auto& pool = util::ThreadPool::global();

  if (cin_g == 1 && cout_g == 1) {
    // Depthwise: skip im2col + per-group m==1 GEMMs entirely and compute
    // each (sample, channel) plane directly, in parallel — planes are
    // disjoint, the (ky, kx) accumulation order is fixed, and the fused
    // epilogue lands on the accumulator while it is still in a register.
    const long k = kernel_;
    pool.parallel_for(static_cast<std::size_t>(n * out_channels_),
                      [&](std::size_t t) {
      const long s = static_cast<long>(t) / out_channels_;
      const long c = static_cast<long>(t) % out_channels_;
      const float* img = x.data() + ((s * in_channels_ + c) * h * w);
      const float* wk = weight_.value.data() + c * k * k;
      float* out = y.data() + ((s * out_channels_ + c) * ohw);
      const float es = (ep != nullptr && ep->scale != nullptr)
                           ? ep->scale[c] : 1.0f;
      const float et = (ep != nullptr && ep->shift != nullptr)
                           ? ep->shift[c] : 0.0f;
      for (long oy = 0; oy < oh; ++oy) {
        const long iy0 = oy * stride_ - pad_;
        for (long ox = 0; ox < ow; ++ox) {
          const long ix0 = ox * stride_ - pad_;
          float acc = 0.0f;
          for (long ky = 0; ky < k; ++ky) {
            const long iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            const float* irow = img + iy * w;
            const float* wrow = wk + ky * k;
            for (long kx = 0; kx < k; ++kx) {
              const long ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              acc += wrow[kx] * irow[ix];
            }
          }
          out[oy * ow + ox] =
              ep != nullptr
                  ? tensor::epilogue_apply(
                        ep->act, tensor::epilogue_affine(es, acc, et))
                  : acc;
        }
      }
    });
    return y;
  }

  // Batch the GEMM across samples: one (cout_g × col_rows)·(col_rows ×
  // N·ohw) product per group instead of N skinny ones. The column matrix
  // concatenates every sample's im2col panel, so the GEMM result lands in
  // a (cout_g, N, oh, ow) scratch that is transposed back to NCHW. All
  // scratch is leased from the thread-local workspace pool — no heap
  // allocation on the steady-state path.
  tensor::Workspace& ws = tensor::Workspace::tls();
  tensor::Scratch cols = ws.take(static_cast<std::size_t>(col_rows * n * ohw));
  tensor::Scratch out_panel =
      ws.take(static_cast<std::size_t>(cout_g * n * ohw));

  for (long g = 0; g < groups_; ++g) {
    // Per-sample im2col panels are independent and each sample writes a
    // disjoint column stripe, so pack them in parallel. The panel scratch
    // is leased inside the body: every worker uses its own pool.
    pool.parallel_for(static_cast<std::size_t>(n), [&](std::size_t si) {
      const long s = static_cast<long>(si);
      tensor::Scratch panel =
          tensor::Workspace::tls().take(static_cast<std::size_t>(col_rows * ohw));
      const float* img = x.data() + ((s * in_channels_ + g * cin_g) * h * w);
      // Write sample s's panel into columns [s*ohw, (s+1)*ohw):
      // im2col fills row-major (col_rows × ohw); scatter rows by stride.
      tensor::im2col(img, geom, panel.data());
      for (long r = 0; r < col_rows; ++r) {
        std::copy(panel.data() + r * ohw, panel.data() + (r + 1) * ohw,
                  cols.data() + r * n * ohw + s * ohw);
      }
    });
    const float* wgt =
        weight_.value.data() + g * cout_g * cin_g * kernel_ * kernel_;
    if (ep != nullptr) {
      // The GEMM row axis is the output channel within this group, so the
      // per-row epilogue is exactly the per-channel bias/BN/act — sliced
      // to this group's channel range.
      tensor::GemmEpilogue gep;
      gep.scale = ep->scale != nullptr ? ep->scale + g * cout_g : nullptr;
      gep.shift = ep->shift != nullptr ? ep->shift + g * cout_g : nullptr;
      gep.act = ep->act;
      tensor::gemm_fused(static_cast<std::size_t>(cout_g),
                         static_cast<std::size_t>(n * ohw),
                         static_cast<std::size_t>(col_rows), 1.0f, wgt,
                         cols.data(), out_panel.data(), gep);
    } else {
      tensor::gemm(static_cast<std::size_t>(cout_g),
                   static_cast<std::size_t>(n * ohw),
                   static_cast<std::size_t>(col_rows), 1.0f, wgt, cols.data(),
                   0.0f, out_panel.data());
    }
    pool.parallel_for(static_cast<std::size_t>(cout_g), [&](std::size_t ci) {
      const long c = static_cast<long>(ci);
      for (long s = 0; s < n; ++s) {
        std::copy(out_panel.data() + (c * n + s) * ohw,
                  out_panel.data() + (c * n + s + 1) * ohw,
                  y.data() + ((s * out_channels_ + g * cout_g + c) * ohw));
      }
    });
  }
  return y;
}

Tensor Conv2d::forward_quant_impl(const Tensor& x,
                                  const tensor::GemmEpilogue* ep) {
  const long n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const long cin_g = in_channels_ / groups_;
  const long cout_g = out_channels_ / groups_;
  ConvGeom geom{cin_g, h, w, kernel_, stride_, pad_};
  const long oh = geom.out_h(), ow = geom.out_w();
  Tensor y({n, out_channels_, oh, ow});
  const long col_rows = cin_g * kernel_ * kernel_;
  const long ohw = oh * ow;
  auto& pool = util::ThreadPool::global();

  const tensor::QuantParams aq = quant_.input;
  const std::int32_t za = aq.zero_point;
  const std::int8_t* qw = quant_.qweight.i8_data();

  // Compose the caller's per-channel affine with the dequantization:
  //   real_acc = s_a * s_w[c] * (int_acc - z_a * wsum[c])
  // so  act(scale[c] * real_acc + shift[c])
  //   = act((scale[c] * s_a * s_w[c]) * (int_acc + acc_bias[c]) + shift[c])
  // with acc_bias[c] = -z_a * wsum[c] — exactly the QuantEpilogue form,
  // applied in the int8 GEMM's C-writeback.
  tensor::Workspace& ws = tensor::Workspace::tls();
  tensor::Scratch qscale = ws.take(static_cast<std::size_t>(out_channels_));
  tensor::ByteScratch qbias = ws.take_bytes(
      static_cast<std::size_t>(out_channels_) * sizeof(std::int32_t));
  // int32 view of 64B-aligned pooled scratch, not wire decoding.
  // hsconas-lint-allow(serial-pointer-cast)
  std::int32_t* acc_bias = reinterpret_cast<std::int32_t*>(qbias.u8());
  for (long c = 0; c < out_channels_; ++c) {
    const float es =
        (ep != nullptr && ep->scale != nullptr) ? ep->scale[c] : 1.0f;
    qscale[static_cast<std::size_t>(c)] =
        es * aq.scale * quant_.weight_scales[static_cast<std::size_t>(c)];
    acc_bias[c] = -za * quant_.weight_row_sums[static_cast<std::size_t>(c)];
  }

  if (cin_g == 1 && cout_g == 1) {
    // Depthwise: quantize each input plane once and accumulate in int32
    // directly. Border taps are skipped rather than padded, so the
    // zero-point correction uses the per-pixel in-range weight sum
    // instead of the full-row acc_bias.
    const long k = kernel_;
    pool.parallel_for(static_cast<std::size_t>(n * out_channels_),
                      [&](std::size_t t) {
      const long s = static_cast<long>(t) / out_channels_;
      const long c = static_cast<long>(t) % out_channels_;
      tensor::ByteScratch qplane = tensor::Workspace::tls().take_bytes(
          static_cast<std::size_t>(h * w));
      quantize_u8(x.data() + ((s * in_channels_ + c) * h * w),
                  static_cast<std::size_t>(h * w), aq, qplane.u8());
      const std::uint8_t* qimg = qplane.u8();
      const std::int8_t* wk = qw + c * k * k;
      float* out = y.data() + ((s * out_channels_ + c) * ohw);
      const float qs = qscale[static_cast<std::size_t>(c)];
      const float et = (ep != nullptr && ep->shift != nullptr)
                           ? ep->shift[c] : 0.0f;
      const tensor::EpilogueAct act =
          ep != nullptr ? ep->act : tensor::EpilogueAct::kNone;
      for (long oy = 0; oy < oh; ++oy) {
        const long iy0 = oy * stride_ - pad_;
        for (long ox = 0; ox < ow; ++ox) {
          const long ix0 = ox * stride_ - pad_;
          std::int32_t acc = 0;
          std::int32_t wsum_in = 0;
          for (long ky = 0; ky < k; ++ky) {
            const long iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            const std::uint8_t* irow = qimg + iy * w;
            const std::int8_t* wrow = wk + ky * k;
            for (long kx = 0; kx < k; ++kx) {
              const long ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              acc += static_cast<std::int32_t>(wrow[kx]) *
                     static_cast<std::int32_t>(irow[ix]);
              wsum_in += wrow[kx];
            }
          }
          // hsconas-lint-allow(quant-dtype-discipline): sanctioned
          // int32→float dequantization site (depthwise writeback).
          const float deq = static_cast<float>(acc - za * wsum_in);
          out[oy * ow + ox] = tensor::epilogue_apply(
              act, tensor::epilogue_affine(qs, deq, et));
        }
      }
    });
    return y;
  }

  // Grouped path: same sample-batched im2col as fp32, but the scattered
  // column matrix is quantized to u8 per sample (each sample's stripe is
  // quantized independently, which keeps batched == sequential results
  // bit-identical), then one int8 GEMM per group dequantizes in its
  // writeback epilogue.
  tensor::ByteScratch qcols =
      ws.take_bytes(static_cast<std::size_t>(col_rows * n * ohw));
  tensor::Scratch out_panel =
      ws.take(static_cast<std::size_t>(cout_g * n * ohw));

  for (long g = 0; g < groups_; ++g) {
    pool.parallel_for(static_cast<std::size_t>(n), [&](std::size_t si) {
      const long s = static_cast<long>(si);
      tensor::Scratch panel = tensor::Workspace::tls().take(
          static_cast<std::size_t>(col_rows * ohw));
      const float* img = x.data() + ((s * in_channels_ + g * cin_g) * h * w);
      tensor::im2col(img, geom, panel.data());
      // im2col zero-padding quantizes to exactly z_a (the observer range
      // always includes 0), so padded taps contribute 0 after the
      // acc_bias correction — the full-row wsum stays valid.
      for (long r = 0; r < col_rows; ++r) {
        quantize_u8(panel.data() + r * ohw, static_cast<std::size_t>(ohw),
                    aq, qcols.u8() + r * n * ohw + s * ohw);
      }
    });
    const std::int8_t* wgt = qw + g * cout_g * col_rows;
    tensor::QuantEpilogue qep;
    qep.scale = qscale.data() + g * cout_g;
    qep.shift = (ep != nullptr && ep->shift != nullptr)
                    ? ep->shift + g * cout_g : nullptr;
    qep.acc_bias = acc_bias + g * cout_g;
    qep.act = ep != nullptr ? ep->act : tensor::EpilogueAct::kNone;
    tensor::gemm_i8_requant(static_cast<std::size_t>(cout_g),
                            static_cast<std::size_t>(n * ohw),
                            static_cast<std::size_t>(col_rows), wgt,
                            qcols.u8(), out_panel.data(), qep);
    pool.parallel_for(static_cast<std::size_t>(cout_g), [&](std::size_t ci) {
      const long c = static_cast<long>(ci);
      for (long s = 0; s < n; ++s) {
        std::copy(out_panel.data() + (c * n + s) * ohw,
                  out_panel.data() + (c * n + s + 1) * ohw,
                  y.data() + ((s * out_channels_ + g * cout_g + c) * ohw));
      }
    });
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& dy) {
  const Tensor& x = cached_input_;
  HSCONAS_CHECK_MSG(!x.empty(), "Conv2d::backward before forward");
  obs::OpScope prof(
      [&] { return conv_op_info(*this, x, "conv2d.bwd", 2.0); });
  const long n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const long cin_g = in_channels_ / groups_;
  const long cout_g = out_channels_ / groups_;
  ConvGeom geom{cin_g, h, w, kernel_, stride_, pad_};
  const long oh = geom.out_h(), ow = geom.out_w();
  HSCONAS_CHECK_MSG(dy.ndim() == 4 && dy.dim(0) == n &&
                        dy.dim(1) == out_channels_ && dy.dim(2) == oh &&
                        dy.dim(3) == ow,
                    "Conv2d::backward: dy shape mismatch");

  Tensor dx(x.shape());
  const long col_rows = cin_g * kernel_ * kernel_;
  const long ohw = oh * ow;

  // Mirror the forward pass's sample batching: per group, build the
  // concatenated column matrix and output-gradient panel once, run two
  // well-shaped GEMMs, then scatter the column gradients back per sample.
  tensor::Workspace& ws = tensor::Workspace::tls();
  tensor::Scratch cols = ws.take(static_cast<std::size_t>(col_rows * n * ohw));
  tensor::Scratch dy_panel =
      ws.take(static_cast<std::size_t>(cout_g * n * ohw));
  tensor::Scratch dcols =
      ws.take(static_cast<std::size_t>(col_rows * n * ohw));
  auto& pool = util::ThreadPool::global();

  for (long g = 0; g < groups_; ++g) {
    pool.parallel_for(static_cast<std::size_t>(n), [&](std::size_t si) {
      const long s = static_cast<long>(si);
      tensor::Scratch panel =
          tensor::Workspace::tls().take(static_cast<std::size_t>(col_rows * ohw));
      const float* img = x.data() + ((s * in_channels_ + g * cin_g) * h * w);
      tensor::im2col(img, geom, panel.data());
      for (long r = 0; r < col_rows; ++r) {
        std::copy(panel.data() + r * ohw, panel.data() + (r + 1) * ohw,
                  cols.data() + r * n * ohw + s * ohw);
      }
      for (long c = 0; c < cout_g; ++c) {
        const float* grad_out =
            dy.data() + ((s * out_channels_ + g * cout_g + c) * ohw);
        std::copy(grad_out, grad_out + ohw,
                  dy_panel.data() + (c * n + s) * ohw);
      }
    });

    float* wgrad =
        weight_.grad.data() + g * cout_g * cin_g * kernel_ * kernel_;
    const float* wgt =
        weight_.value.data() + g * cout_g * cin_g * kernel_ * kernel_;

    // dW += dY_panel · colsᵀ  — (cout_g × N·ohw) · (N·ohw × col_rows).
    tensor::gemm_a_bt(static_cast<std::size_t>(cout_g),
                      static_cast<std::size_t>(col_rows),
                      static_cast<std::size_t>(n * ohw), 1.0f,
                      dy_panel.data(), cols.data(), 1.0f, wgrad);

    // dcols = Wᵀ · dY_panel — (col_rows × cout_g) · (cout_g × N·ohw).
    tensor::gemm_at_b(static_cast<std::size_t>(col_rows),
                      static_cast<std::size_t>(n * ohw),
                      static_cast<std::size_t>(cout_g), 1.0f, wgt,
                      dy_panel.data(), 0.0f, dcols.data());

    // Each sample's image-gradient slab is disjoint, so the gather +
    // col2im scatter runs per sample in parallel too.
    pool.parallel_for(static_cast<std::size_t>(n), [&](std::size_t si) {
      const long s = static_cast<long>(si);
      tensor::Scratch sample_dcols =
          tensor::Workspace::tls().take(static_cast<std::size_t>(col_rows * ohw));
      for (long r = 0; r < col_rows; ++r) {
        std::copy(dcols.data() + r * n * ohw + s * ohw,
                  dcols.data() + r * n * ohw + (s + 1) * ohw,
                  sample_dcols.data() + r * ohw);
      }
      float* img_grad = dx.data() + ((s * in_channels_ + g * cin_g) * h * w);
      tensor::col2im(sample_dcols.data(), geom, img_grad);
    });
  }

  if (has_bias_) {
    for (long s = 0; s < n; ++s) {
      for (long c = 0; c < out_channels_; ++c) {
        const float* grad_out = dy.data() + ((s * out_channels_ + c) * ohw);
        float acc = 0.0f;
        for (long i = 0; i < ohw; ++i) acc += grad_out[i];
        bias_.grad.at(c) += acc;
      }
    }
  }
  return dx;
}

void Conv2d::collect_params(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

long Conv2d::macs(long in_h, long in_w) const {
  ConvGeom geom{in_channels_ / groups_, in_h, in_w, kernel_, stride_, pad_};
  const long out_spatial = geom.out_h() * geom.out_w();
  return out_channels_ * (in_channels_ / groups_) * kernel_ * kernel_ *
         out_spatial;
}

}  // namespace hsconas::nn
