#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace hsconas::util {
class ByteWriter;
class ByteReader;
}  // namespace hsconas::util

namespace hsconas::nn {

/// Numeric type the eval-mode forward pass computes in. The seam is an
/// enum (not a bool) so future datapaths (bf16, int4) slot in without
/// another cross-layer refactor.
enum class InferenceDType : std::uint8_t { kF32 = 0, kI8 = 1 };

/// Process-wide opt-in switch for the int8 inference datapath, the dtype
/// analogue of set_inference_fusion(). Default kF32: training and every
/// existing eval path are bit-for-bit untouched. When kI8, Conv2d and
/// Linear eval-mode forwards route through the int8 GEMM for layers whose
/// QuantState is ready (calibrated); uncalibrated layers fall back to
/// fp32, so a partially calibrated model still computes correct results.
void set_inference_dtype(InferenceDType dtype);
InferenceDType inference_dtype();

/// Parse/print helpers for CLI flags and bench JSON ("f32" / "int8").
const char* inference_dtype_name(InferenceDType dtype);
InferenceDType parse_inference_dtype(const std::string& name);

/// Process-wide calibration-mode switch. While on, eval-mode Conv2d and
/// Linear forwards feed their input activations to their MinMaxObserver
/// (and still compute in fp32). Drive it via calibrate() rather than
/// directly.
void set_calibration_mode(bool on);
bool calibration_mode();

/// Running min/max over every batch fed through a layer during
/// calibration; yields the asymmetric per-tensor uint8 activation
/// quantizer. The range is widened to include 0 so that zero-padding
/// (im2col borders) and ReLU floors are exactly representable — the
/// zero_point maps to real 0.0 with no rounding error.
class MinMaxObserver {
 public:
  void observe(const float* x, std::size_t n);
  bool seen() const { return seen_; }
  void reset();

  /// Frozen activation quantizer: scale = (hi - lo) / 255 with
  /// lo = min(0, min_seen), hi = max(0, max_seen); zero_point = the u8
  /// code for real 0. Degenerate (unseen or constant-zero) ranges give
  /// the identity quantizer {1, 0}.
  tensor::QuantParams params() const;

 private:
  float min_ = 0.0f;
  float max_ = 0.0f;
  bool seen_ = false;
};

/// Post-training-quantization state attached to a Conv2d / Linear:
/// the input-activation observer plus, once frozen, everything the int8
/// forward needs — the per-tensor activation quantizer, per-out-channel
/// symmetric int8 weights (stored in a DType::kI8 Tensor, pool-allocated
/// like any other), their scales, and the per-channel weight row sums
/// that carry the activation zero-point correction into the GEMM
/// epilogue's acc_bias slot.
struct QuantState {
  MinMaxObserver observer;
  tensor::QuantParams input;              ///< activation quantizer (u8)
  tensor::Tensor qweight;                 ///< DType::kI8, weight's shape
  std::vector<float> weight_scales;       ///< per out-channel, length rows
  std::vector<std::int32_t> weight_row_sums;  ///< Σ_k qweight[c][k]
  bool ready = false;

  /// Freeze from observed activations + the given weights: quantize the
  /// weights per out-channel (symmetric, |q| <= 127), record scales and
  /// row sums, snapshot the observer's activation params. `rows` is the
  /// out-channel count; weight must have rows * cols elements.
  void freeze(const tensor::Tensor& weight, long rows);

  /// Freeze from imported activation params + weight scales (checkpoint
  /// restore): requantizes the weights with the stored scales, which is
  /// deterministic given identical weights.
  void freeze_from(const tensor::Tensor& weight, long rows,
                   tensor::QuantParams act,
                   const std::vector<float>& scales);

  void reset();
};

/// Quantize n floats with the asymmetric u8 quantizer:
/// out[i] = clamp(round(x[i] / p.scale) + p.zero_point, 0, 255).
void quantize_u8(const float* x, std::size_t n, tensor::QuantParams p,
                 std::uint8_t* out);

/// Inverse map for one code (tests, diagnostics).
float dequantize_u8(std::uint8_t q, tensor::QuantParams p);

/// Post-training calibration driver: arms the observers, feeds each batch
/// through `root` in eval mode, then freezes every layer that saw data.
/// Returns the number of layers frozen. Restores the previous
/// training/calibration/dtype state on exit; the forward passes always
/// run in fp32 regardless of the current inference dtype.
std::size_t calibrate(Module& root,
                      const std::vector<tensor::Tensor>& batches);

/// Generalized calibration driver for roots that are not Modules
/// themselves (core::Supernet wraps its modules behind its own visit):
/// `visit` must apply its argument to every module of the network and
/// `forward` must run one fp32 eval-mode batch through it. The caller is
/// responsible for putting the network in eval mode first; dtype and
/// calibration-mode state are saved/restored here exactly as calibrate()
/// does. Returns the number of layers frozen.
std::size_t calibrate_with(
    const std::function<void(const std::function<void(Module&)>&)>& visit,
    const std::function<void(const tensor::Tensor&)>& forward,
    const std::vector<tensor::Tensor>& batches);

/// Serialize / restore every quantized layer's calibration table
/// (activation params + per-channel weight scales), in deterministic
/// visit order. The payload is container-agnostic bytes — the checkpoint
/// layer stores it as its own CRC-framed section. import_calibration
/// requantizes weights from the stored scales, so it must run after the
/// model's weights are restored; throws InvalidArgument on layer-count
/// or channel-count mismatch.
void export_calibration(Module& root, util::ByteWriter& w);
void import_calibration(Module& root, util::ByteReader& r);

}  // namespace hsconas::nn
