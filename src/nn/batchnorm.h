#pragma once

#include "nn/module.h"

namespace hsconas::nn {

/// Per-channel batch normalization over NCHW activations.
///
/// Training mode normalizes with batch statistics and updates running
/// estimates with exponential momentum; eval mode uses the running
/// estimates. gamma/beta are trainable and excluded from weight decay.
///
/// Interaction with dynamic channel scaling: BN is strictly per-channel, so
/// masking other channels never perturbs the statistics of active ones.
/// Masked channels see all-zero batches (mean 0, var 0) and are re-masked
/// downstream, so the `beta` they would leak is suppressed (see
/// ChannelMask).
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(long channels, double momentum = 0.1,
                       double eps = 1e-5,
                       std::string display_name = "bn");

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  void collect_params(std::vector<Parameter*>& out) override;
  std::string name() const override { return display_name_; }

  long channels() const { return channels_; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  const tensor::Tensor& running_mean() const { return running_mean_; }
  const tensor::Tensor& running_var() const { return running_var_; }

  /// Variance stabilizer, needed to fold eval-mode BN into a conv
  /// epilogue scale/shift (see nn/fused_conv.h).
  double eps() const { return eps_; }

  /// Reset running statistics to (0, 1) — used when re-calibrating BN after
  /// the search picks a subnet (standard one-shot NAS practice).
  void reset_running_stats();

 private:
  long channels_;
  double momentum_, eps_;
  std::string display_name_;
  Parameter gamma_, beta_;
  tensor::Tensor running_mean_, running_var_;

  // Forward cache for backward.
  tensor::Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  long cached_n_ = 0, cached_h_ = 0, cached_w_ = 0;
};

}  // namespace hsconas::nn
