#pragma once

#include <memory>
#include <vector>

#include "nn/choice_block.h"
#include "nn/conv2d.h"
#include "nn/mask.h"
#include "nn/module.h"
#include "nn/shuffle.h"

namespace hsconas::nn {

/// The K = 5 candidate operators of the HSCoNAS search space (§IV-B):
/// ShuffleNetV2 building blocks with kernel 3/5/7, the Xception-style
/// variant with three stacked depthwise 3×3 convolutions, and a
/// skip-connection. This matches the operator set popularized by
/// Single-Path-One-Shot NAS, which the paper's space description follows.
enum class BlockKind {
  kShuffleK3 = 0,
  kShuffleK5 = 1,
  kShuffleK7 = 2,
  kXception = 3,
  kSkip = 4,
};

constexpr int kNumBlockKinds = 5;

const char* block_kind_name(BlockKind kind);

/// Kernel size of the main depthwise convolution for a kind (3 for
/// xception/skip).
long block_kernel(BlockKind kind);

/// One searchable layer of the supernet.
///
/// stride 1 (in == out, even): channel-split into halves; identity on the
/// left half, the chosen operator's branch on the right; concat + channel
/// shuffle. stride 2: two parallel branches (projection + main) on the full
/// input, concat halves the spatial size and sets the new width.
///
/// kSkip is Identity at stride 1; at stride 2 (where a pure identity cannot
/// change geometry) it lowers to the minimal projection branch, keeping
/// K = 5 choices at every layer so |A| = (K·|C|)^L matches the paper's
/// quoted 9.5e33.
///
/// Dynamic channel scaling: set_channel_factor(c) masks the branch's
/// mid-channels down to round(c · S) where S = max_mid_channels().
class ShuffleChoiceBlock : public ChoiceBlock {
 public:
  ShuffleChoiceBlock(BlockKind kind, long in_channels, long out_channels,
                     long stride, util::Rng& rng,
                     std::string display_name = "choice_block");

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  void collect_params(std::vector<Parameter*>& out) override;
  void set_training(bool training) override;
  void visit(const std::function<void(Module&)>& fn) override;
  std::string name() const override { return display_name_; }

  BlockKind kind() const { return kind_; }
  long in_channels() const override { return in_channels_; }
  long out_channels() const override { return out_channels_; }
  long stride() const override { return stride_; }

  /// Sˡ — the width being scaled by the dynamic channel factor.
  long max_mid_channels() const override { return mid_channels_; }

  /// Apply channel factor c ∈ (0, 1]; a no-op for blocks without a
  /// searchable width (pure skip at stride 1).
  void set_channel_factor(double factor) override;
  double channel_factor() const override { return channel_factor_; }
  long active_mid_channels() const override;

 private:
  tensor::Tensor forward_stride1(const tensor::Tensor& x);
  tensor::Tensor forward_stride2(const tensor::Tensor& x);
  tensor::Tensor backward_stride1(const tensor::Tensor& dy);
  tensor::Tensor backward_stride2(const tensor::Tensor& dy);

  BlockKind kind_;
  long in_channels_, out_channels_, stride_, mid_channels_;
  double channel_factor_ = 1.0;
  std::string display_name_;

  std::unique_ptr<Sequential> main_;    // operator branch
  std::unique_ptr<Sequential> proj_;    // stride-2 projection branch
  std::unique_ptr<ChannelShuffle> shuffle_;
  std::vector<ChannelMask*> masks_;     // observers into main_

  bool pure_identity_ = false;  // skip @ stride 1
  long split_left_ = 0;         // stride-1 split point
};

/// Factory matching the search-space operator table.
std::unique_ptr<ShuffleChoiceBlock> make_choice_block(
    BlockKind kind, long in_channels, long out_channels, long stride,
    util::Rng& rng, std::string display_name = "choice_block");

}  // namespace hsconas::nn
