#pragma once

#include "nn/module.h"

namespace hsconas::nn {

/// Channel mask implementing the paper's dynamic channel scaling (§III-B):
/// the binary vector Iˡ ∈ {0,1}^{Sˡ} zeroes the activations of unselected
/// channels in forward and their gradients in backward, which is exactly
/// equivalent to slicing the layer to its first `active` channels while
/// keeping the full-width shared weights resident ("scale-down-only"
/// masking — the supernet never has to be rebuilt or re-loaded).
///
/// Placement matters: the mask must sit *after* BatchNorm, because BN's
/// `beta` would otherwise re-introduce a nonzero constant on channels whose
/// inputs were masked upstream.
class ChannelMask : public Module {
 public:
  explicit ChannelMask(long channels);

  /// Activate the first `active` channels (1 <= active <= channels).
  void set_active(long active);
  long active() const { return active_; }
  long channels() const { return channels_; }

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  std::string name() const override { return "channel_mask"; }

 private:
  long channels_;
  long active_;
};

/// Round a channel count by a scaling factor the way the paper does
/// (`5 × 0.5 ≈ 3`, i.e. round-half-up), clamped to at least 1.
long scaled_channels(long max_channels, double factor);

}  // namespace hsconas::nn
