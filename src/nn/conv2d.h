#pragma once

#include "nn/module.h"
#include "nn/quantize.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"

namespace hsconas::nn {

/// 2-D convolution with square kernels, symmetric padding and channel
/// groups (groups == in_channels == out_channels gives depthwise).
///
/// Weights are OIHW with I = in_channels / groups. Implemented as
/// im2col + GEMM per sample per group; gradients for weights, bias and
/// input are exact.
class Conv2d : public Module {
 public:
  /// Kaiming-normal weight init (fan_in, ReLU gain); zero bias.
  Conv2d(long in_channels, long out_channels, long kernel, long stride,
         long pad, long groups, bool bias, util::Rng& rng,
         std::string display_name = "conv2d");

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  void collect_params(std::vector<Parameter*>& out) override;
  std::string name() const override { return display_name_; }

  /// Inference-only fused forward: y = act(scale[c] * conv_raw + shift[c])
  /// per output channel, applied inside the GEMM's C-writeback (one memory
  /// pass for conv + bias + BN + activation). `scale`/`shift` have
  /// out_channels entries and must already fold the conv bias and any
  /// BatchNorm terms — this layer's own bias_ is intentionally ignored
  /// (see nn/fused_conv.h for the folding helper). Null scale means 1,
  /// null shift means 0. Does not cache the input: backward() after a
  /// fused forward is a contract violation.
  tensor::Tensor forward_fused(const tensor::Tensor& x, const float* scale,
                               const float* shift, tensor::EpilogueAct act);

  long in_channels() const { return in_channels_; }
  long out_channels() const { return out_channels_; }
  long kernel() const { return kernel_; }
  long stride() const { return stride_; }
  long pad() const { return pad_; }
  long groups() const { return groups_; }

  Parameter& weight() { return weight_; }
  Parameter* bias() { return has_bias_ ? &bias_ : nullptr; }

  /// Int8 PTQ state: observed during calibration mode, consumed by the
  /// quantized eval forward when inference_dtype() == kI8 and ready.
  QuantState* quant_state() override { return &quant_; }

  /// Analytic multiply-accumulate count for one sample at the given input
  /// spatial size (used to cross-check the core library's FLOPs counters).
  long macs(long in_h, long in_w) const;

 private:
  /// Shared forward body. `ep`, when non-null, spans all out_channels
  /// (per-group slices are taken internally) and is applied during the
  /// GEMM writeback / depthwise accumulation. Does not touch
  /// cached_input_.
  tensor::Tensor forward_impl(const tensor::Tensor& x,
                              const tensor::GemmEpilogue* ep);

  /// Int8 eval-mode body: same contract as forward_impl (`ep` spans all
  /// out_channels and already folds bias/BN), but computes via uint8
  /// activation quantization + the int8 GEMM, dequantizing inside the
  /// requant epilogue. Requires quant_.ready.
  tensor::Tensor forward_quant_impl(const tensor::Tensor& x,
                                    const tensor::GemmEpilogue* ep);

  long in_channels_, out_channels_, kernel_, stride_, pad_, groups_;
  bool has_bias_;
  std::string display_name_;
  Parameter weight_;
  Parameter bias_;
  QuantState quant_;
  tensor::Tensor cached_input_;
};

}  // namespace hsconas::nn
