#include "nn/pooling.h"

#include <limits>
#include <span>

#include "nn/op_profile.h"
#include "util/thread_pool.h"

namespace hsconas::nn {

using tensor::Tensor;

namespace {

/// Global average pool: one add per input element, output is (N, C).
/// Takes the NCHW shape (not the tensor) so backward can describe itself
/// from the cached input shape without materializing anything.
obs::OpInfo gap_op_info(const char* op, std::span<const long> shape) {
  obs::OpInfo info;
  info.key.op = op;
  info.key.kind = "pool";
  if (shape.size() != 4) return info;
  info.key.batch = shape[0];
  info.key.in_ch = shape[1];
  info.key.out_ch = shape[1];
  info.key.in_h = shape[2];
  info.key.in_w = shape[3];
  info.key.kernel = shape[2];  // window spans the whole plane
  info.key.stride = shape[2];
  const double numel = static_cast<double>(shape[0] * shape[1]) *
                       static_cast<double>(shape[2] * shape[3]);
  info.flops = numel;
  info.bytes = 4.0 * (numel + static_cast<double>(shape[0] * shape[1]));
  return info;
}

/// Max pool: kernel² compares per output element.
obs::OpInfo maxpool_op_info(const char* op, std::span<const long> shape,
                            long kernel, long stride, long pad) {
  obs::OpInfo info;
  info.key.op = op;
  info.key.kind = "pool";
  info.key.kernel = kernel;
  info.key.stride = stride;
  if (shape.size() != 4) return info;
  const long h = shape[2], w = shape[3];
  const long oh = (h + 2 * pad - kernel) / stride + 1;
  const long ow = (w + 2 * pad - kernel) / stride + 1;
  info.key.batch = shape[0];
  info.key.in_ch = shape[1];
  info.key.out_ch = shape[1];
  info.key.in_h = h;
  info.key.in_w = w;
  if (oh <= 0 || ow <= 0) return info;
  const double in_numel = static_cast<double>(shape[0] * shape[1]) *
                          static_cast<double>(h * w);
  const double out_numel = static_cast<double>(shape[0] * shape[1]) *
                           static_cast<double>(oh * ow);
  info.flops = out_numel * static_cast<double>(kernel * kernel);
  info.bytes = 4.0 * (in_numel + out_numel);
  return info;
}

}  // namespace

// Pooling parallelizes over (sample, channel) planes: every plane reads
// and writes disjoint memory and the within-plane loops are serial, so
// outputs are identical at any thread count.

Tensor GlobalAvgPool::forward(const Tensor& x) {
  obs::OpScope prof([&] { return gap_op_info("gap", x.shape()); });
  if (x.ndim() != 4) {
    throw InvalidArgument("GlobalAvgPool: expected NCHW, got " +
                          x.shape_str());
  }
  cached_shape_ = x.shape();
  const long n = x.dim(0), c = x.dim(1), spatial = x.dim(2) * x.dim(3);
  Tensor y({n, c});
  util::ThreadPool::global().parallel_for(
      static_cast<std::size_t>(n * c), [&](std::size_t t) {
        const long s = static_cast<long>(t) / c;
        const long ch = static_cast<long>(t) % c;
        const float* chan = x.data() + ((s * c + ch) * spatial);
        double acc = 0.0;
        for (long i = 0; i < spatial; ++i) acc += chan[i];
        y.at(s, ch) = static_cast<float>(acc / static_cast<double>(spatial));
      });
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& dy) {
  HSCONAS_CHECK_MSG(!cached_shape_.empty(),
                    "GlobalAvgPool::backward before forward");
  obs::OpScope prof([&] { return gap_op_info("gap.bwd", cached_shape_); });
  const long n = cached_shape_[0], c = cached_shape_[1];
  const long spatial = cached_shape_[2] * cached_shape_[3];
  HSCONAS_CHECK_MSG(dy.ndim() == 2 && dy.dim(0) == n && dy.dim(1) == c,
                    "GlobalAvgPool::backward: dy shape mismatch");
  Tensor dx(cached_shape_);
  const float scale = 1.0f / static_cast<float>(spatial);
  util::ThreadPool::global().parallel_for(
      static_cast<std::size_t>(n * c), [&](std::size_t t) {
        const long s = static_cast<long>(t) / c;
        const long ch = static_cast<long>(t) % c;
        const float g = dy.at(s, ch) * scale;
        float* chan = dx.data() + ((s * c + ch) * spatial);
        for (long i = 0; i < spatial; ++i) chan[i] = g;
      });
  return dx;
}

MaxPool2d::MaxPool2d(long kernel, long stride, long pad)
    : kernel_(kernel), stride_(stride), pad_(pad) {
  if (kernel <= 0 || stride <= 0 || pad < 0) {
    throw InvalidArgument("MaxPool2d: bad geometry");
  }
}

Tensor MaxPool2d::forward(const Tensor& x) {
  obs::OpScope prof([&] {
    return maxpool_op_info("maxpool", x.shape(), kernel_, stride_, pad_);
  });
  if (x.ndim() != 4) {
    throw InvalidArgument("MaxPool2d: expected NCHW, got " + x.shape_str());
  }
  cached_in_shape_ = x.shape();
  const long n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const long oh = (h + 2 * pad_ - kernel_) / stride_ + 1;
  const long ow = (w + 2 * pad_ - kernel_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) {
    throw InvalidArgument("MaxPool2d: output collapses to zero size");
  }
  Tensor y({n, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(n * c * oh * ow), -1);

  util::ThreadPool::global().parallel_for(
      static_cast<std::size_t>(n * c), [&](std::size_t t) {
        const long s = static_cast<long>(t) / c;
        const long ch = static_cast<long>(t) % c;
        const float* chan = x.data() + ((s * c + ch) * h * w);
        float* out = y.data() + ((s * c + ch) * oh * ow);
        long* amax = argmax_.data() +
                     static_cast<std::size_t>((s * c + ch) * oh * ow);
        for (long oy = 0; oy < oh; ++oy) {
          for (long ox = 0; ox < ow; ++ox) {
            float best = -std::numeric_limits<float>::infinity();
            long best_idx = -1;
            for (long ky = 0; ky < kernel_; ++ky) {
              const long iy = oy * stride_ + ky - pad_;
              if (iy < 0 || iy >= h) continue;
              for (long kx = 0; kx < kernel_; ++kx) {
                const long ix = ox * stride_ + kx - pad_;
                if (ix < 0 || ix >= w) continue;
                const long idx = iy * w + ix;
                if (chan[idx] > best) {
                  best = chan[idx];
                  best_idx = idx;
                }
              }
            }
            out[oy * ow + ox] = best_idx >= 0 ? best : 0.0f;
            amax[oy * ow + ox] = best_idx;
          }
        }
      });
  return y;
}

Tensor MaxPool2d::backward(const Tensor& dy) {
  HSCONAS_CHECK_MSG(!cached_in_shape_.empty(),
                    "MaxPool2d::backward before forward");
  obs::OpScope prof([&] {
    return maxpool_op_info("maxpool.bwd", cached_in_shape_, kernel_, stride_,
                           pad_);
  });
  const long n = cached_in_shape_[0], c = cached_in_shape_[1];
  const long h = cached_in_shape_[2], w = cached_in_shape_[3];
  const long oh = dy.dim(2), ow = dy.dim(3);
  Tensor dx(cached_in_shape_);
  // amax entries are plane-local input indices, so the scatter for plane
  // (s, ch) only ever touches that plane's slab of dx.
  util::ThreadPool::global().parallel_for(
      static_cast<std::size_t>(n * c), [&](std::size_t t) {
        const long s = static_cast<long>(t) / c;
        const long ch = static_cast<long>(t) % c;
        const float* grad = dy.data() + ((s * c + ch) * oh * ow);
        float* out = dx.data() + ((s * c + ch) * h * w);
        const long* amax = argmax_.data() +
                           static_cast<std::size_t>((s * c + ch) * oh * ow);
        for (long i = 0; i < oh * ow; ++i) {
          if (amax[i] >= 0) out[amax[i]] += grad[i];
        }
      });
  return dx;
}

}  // namespace hsconas::nn
