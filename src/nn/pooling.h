#pragma once

#include "nn/module.h"

namespace hsconas::nn {

/// Global average pooling: (N, C, H, W) -> (N, C).
class GlobalAvgPool : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  std::string name() const override { return "gap"; }

 private:
  tensor::ShapeVec cached_shape_;
};

/// Max pooling with square window/stride and symmetric padding
/// (used by the ShuffleNetV2 stem: 3×3, stride 2, pad 1).
class MaxPool2d : public Module {
 public:
  MaxPool2d(long kernel, long stride, long pad);

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  std::string name() const override { return "maxpool"; }

 private:
  long kernel_, stride_, pad_;
  tensor::ShapeVec cached_in_shape_;
  std::vector<long> argmax_;  // flat input index per output element
};

}  // namespace hsconas::nn
