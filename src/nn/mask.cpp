#include "nn/mask.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/op_profile.h"

namespace hsconas::nn {

using tensor::Tensor;

ChannelMask::ChannelMask(long channels)
    : channels_(channels), active_(channels) {
  if (channels <= 0) throw InvalidArgument("ChannelMask: channels <= 0");
}

void ChannelMask::set_active(long active) {
  if (active < 1 || active > channels_) {
    throw InvalidArgument("ChannelMask: active out of [1, channels]");
  }
  active_ = active;
}

namespace {
Tensor mask_impl(const Tensor& x, long channels, long active) {
  if (x.ndim() != 4 || x.dim(1) != channels) {
    throw InvalidArgument("ChannelMask: bad input shape " + x.shape_str());
  }
  if (active == channels) return x;  // no-op fast path
  const long n = x.dim(0), spatial = x.dim(2) * x.dim(3);
  Tensor y = x;
  for (long s = 0; s < n; ++s) {
    float* tail = y.data() + ((s * channels + active) * spatial);
    std::memset(tail, 0,
                static_cast<std::size_t>((channels - active) * spatial) *
                    sizeof(float));
  }
  return y;
}
}  // namespace

Tensor ChannelMask::forward(const Tensor& x) {
  obs::OpScope prof([&] {
    return detail::elementwise_op_info("channel_mask", "eltwise", x, 1.0);
  });
  return mask_impl(x, channels_, active_);
}

Tensor ChannelMask::backward(const Tensor& dy) {
  obs::OpScope prof([&] {
    return detail::elementwise_op_info("channel_mask.bwd", "eltwise", dy, 1.0);
  });
  return mask_impl(dy, channels_, active_);
}

long scaled_channels(long max_channels, double factor) {
  const long rounded = static_cast<long>(std::llround(
      static_cast<double>(max_channels) * factor));
  return std::clamp<long>(rounded, 1, max_channels);
}

}  // namespace hsconas::nn
