#include "nn/linear.h"

#include <cmath>

#include "nn/op_profile.h"
#include "tensor/gemm.h"
#include "tensor/gemm_i8.h"
#include "tensor/workspace.h"

namespace hsconas::nn {

using tensor::Tensor;

namespace {

obs::OpInfo linear_op_info(const Linear& lin, const Tensor& x, const char* op,
                           double work_mult) {
  obs::OpInfo info;
  info.key.op = op;
  info.key.kind = "linear";
  info.key.in_ch = lin.in_features();
  info.key.out_ch = lin.out_features();
  info.key.in_h = 1;
  info.key.in_w = 1;
  if (x.ndim() != 2 || x.dim(1) != lin.in_features()) return info;
  const double n = static_cast<double>(x.dim(0));
  info.key.batch = x.dim(0);
  const double in_f = static_cast<double>(lin.in_features());
  const double out_f = static_cast<double>(lin.out_features());
  info.flops = work_mult * 2.0 * n * in_f * out_f;
  info.bytes =
      work_mult * 4.0 * (n * in_f + n * out_f + in_f * out_f + out_f);
  return info;
}

}  // namespace

Linear::Linear(long in_features, long out_features, util::Rng& rng,
               std::string display_name)
    : in_features_(in_features),
      out_features_(out_features),
      display_name_(std::move(display_name)) {
  if (in_features <= 0 || out_features <= 0) {
    throw InvalidArgument("Linear: non-positive dimensions");
  }
  const float std_dev =
      std::sqrt(2.0f / static_cast<float>(in_features));
  weight_ = Parameter(display_name_ + ".weight",
                      Tensor::normal({out_features, in_features}, 0.0f,
                                     std_dev, rng),
                      /*decay=*/true);
  bias_ = Parameter(display_name_ + ".bias", Tensor({out_features}),
                    /*decay=*/false);
}

Tensor Linear::forward(const Tensor& x) {
  obs::OpScope prof([&] { return linear_op_info(*this, x, "linear", 1.0); });
  if (x.ndim() != 2 || x.dim(1) != in_features_) {
    throw InvalidArgument("Linear " + display_name_ + ": bad input shape " +
                          x.shape_str());
  }
  if (!training_) {
    if (calibration_mode()) {
      quant_.observer.observe(x.data(), static_cast<std::size_t>(x.numel()));
    }
    if (inference_dtype() == InferenceDType::kI8 && quant_.ready &&
        static_cast<std::size_t>(in_features_) <= tensor::kGemmI8MaxK) {
      return forward_quant(x);
    }
  }
  cached_input_ = x;
  const long n = x.dim(0);
  Tensor y({n, out_features_});
  // Y = X · Wᵀ
  tensor::gemm_a_bt(static_cast<std::size_t>(n),
                    static_cast<std::size_t>(out_features_),
                    static_cast<std::size_t>(in_features_), 1.0f, x.data(),
                    weight_.value.data(), 0.0f, y.data());
  for (long s = 0; s < n; ++s) {
    for (long o = 0; o < out_features_; ++o) {
      y.at(s, o) += bias_.value.at(o);
    }
  }
  return y;
}

Tensor Linear::forward_quant(const Tensor& x) {
  const long n = x.dim(0);
  // The int8 GEMM wants the signed operand as A rows, so compute
  // C = W_q (out×in) · X_qᵀ (in×N) and transpose the (out, N) result
  // back to (N, out). Each input element is quantized independently and
  // integer accumulation is exact, so batched == sequential bit-exactly.
  tensor::Workspace& ws = tensor::Workspace::tls();
  const tensor::QuantParams aq = quant_.input;
  tensor::ByteScratch qx =
      ws.take_bytes(static_cast<std::size_t>(in_features_ * n));
  for (long s = 0; s < n; ++s) {
    for (long t = 0; t < in_features_; ++t) {
      quantize_u8(x.data() + s * in_features_ + t, 1, aq,
                  qx.u8() + t * n + s);
    }
  }
  tensor::Scratch qscale = ws.take(static_cast<std::size_t>(out_features_));
  tensor::ByteScratch qbias = ws.take_bytes(
      static_cast<std::size_t>(out_features_) * sizeof(std::int32_t));
  // int32 view of 64B-aligned pooled scratch, not wire decoding.
  // hsconas-lint-allow(serial-pointer-cast)
  std::int32_t* acc_bias = reinterpret_cast<std::int32_t*>(qbias.u8());
  for (long o = 0; o < out_features_; ++o) {
    qscale[static_cast<std::size_t>(o)] =
        aq.scale * quant_.weight_scales[static_cast<std::size_t>(o)];
    acc_bias[o] = -aq.zero_point *
                  quant_.weight_row_sums[static_cast<std::size_t>(o)];
  }
  tensor::QuantEpilogue qep;
  qep.scale = qscale.data();
  qep.shift = bias_.value.data();
  qep.acc_bias = acc_bias;
  tensor::Scratch out_panel =
      ws.take(static_cast<std::size_t>(out_features_ * n));
  tensor::gemm_i8_requant(static_cast<std::size_t>(out_features_),
                          static_cast<std::size_t>(n),
                          static_cast<std::size_t>(in_features_),
                          quant_.qweight.i8_data(), qx.u8(),
                          out_panel.data(), qep);
  Tensor y({n, out_features_});
  for (long s = 0; s < n; ++s) {
    for (long o = 0; o < out_features_; ++o) {
      y.at(s, o) = out_panel[static_cast<std::size_t>(o * n + s)];
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& dy) {
  HSCONAS_CHECK_MSG(!cached_input_.empty(),
                    "Linear::backward before forward");
  obs::OpScope prof([&] {
    return linear_op_info(*this, cached_input_, "linear.bwd", 2.0);
  });
  const long n = cached_input_.dim(0);
  HSCONAS_CHECK_MSG(dy.ndim() == 2 && dy.dim(0) == n &&
                        dy.dim(1) == out_features_,
                    "Linear::backward: dy shape mismatch");
  // dW += dYᵀ · X ;  dX = dY · W ;  db += colsum(dY)
  tensor::gemm_at_b(static_cast<std::size_t>(out_features_),
                    static_cast<std::size_t>(in_features_),
                    static_cast<std::size_t>(n), 1.0f, dy.data(),
                    cached_input_.data(), 1.0f, weight_.grad.data());
  Tensor dx({n, in_features_});
  tensor::gemm(static_cast<std::size_t>(n),
               static_cast<std::size_t>(in_features_),
               static_cast<std::size_t>(out_features_), 1.0f, dy.data(),
               weight_.value.data(), 0.0f, dx.data());
  for (long s = 0; s < n; ++s) {
    for (long o = 0; o < out_features_; ++o) {
      bias_.grad.at(o) += dy.at(s, o);
    }
  }
  return dx;
}

void Linear::collect_params(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

}  // namespace hsconas::nn
