#pragma once

#include <memory>

#include "nn/module.h"

namespace hsconas::nn {

/// Interface every searchable layer implements: a module whose internal
/// width can be scaled by the paper's dynamic channel factor. The supernet
/// and the search code only ever talk to this interface, which is what
/// makes the framework operator-family-agnostic.
class ChoiceBlock : public Module {
 public:
  /// Apply channel factor c ∈ (0, 1] by masking (§III-B).
  virtual void set_channel_factor(double factor) = 0;
  virtual double channel_factor() const = 0;

  /// Sˡ — the maximum searchable width (0 for widthless ops like skip).
  virtual long max_mid_channels() const = 0;
  virtual long active_mid_channels() const = 0;

  virtual long in_channels() const = 0;
  virtual long out_channels() const = 0;
  virtual long stride() const = 0;
};

/// Operator families the search space can draw from. Both expose K = 5
/// candidates per layer, so the paper's |A| arithmetic is unchanged.
///   kShuffleV2: ShuffleNetV2 blocks k3/k5/k7 + Xception variant + skip
///               (the paper's space, §IV-B);
///   kMbConv:    MobileNetV2-style inverted residuals e3k3/e6k3/e3k5/e6k5 +
///               skip (the ProxylessNAS/FBNet-style space), with the
///               channel factor scaling the expansion width.
enum class OpFamily { kShuffleV2 = 0, kMbConv = 1 };

int family_num_ops(OpFamily family);
const char* family_name(OpFamily family);
const char* family_op_name(OpFamily family, int op);

/// True if `op` is the family's skip-connection operator.
bool family_op_is_skip(OpFamily family, int op);

/// Instantiate one candidate block.
std::unique_ptr<ChoiceBlock> make_family_block(OpFamily family, int op,
                                               long in_channels,
                                               long out_channels, long stride,
                                               util::Rng& rng,
                                               std::string display_name);

}  // namespace hsconas::nn
