#pragma once

#include "nn/module.h"
#include "nn/quantize.h"

namespace hsconas::nn {

/// Fully connected layer over (N, in_features) inputs.
class Linear : public Module {
 public:
  Linear(long in_features, long out_features, util::Rng& rng,
         std::string display_name = "linear");

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  void collect_params(std::vector<Parameter*>& out) override;
  std::string name() const override { return display_name_; }

  long in_features() const { return in_features_; }
  long out_features() const { return out_features_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

  /// Int8 PTQ state: observed during calibration mode, consumed by the
  /// quantized eval forward when inference_dtype() == kI8 and ready.
  QuantState* quant_state() override { return &quant_; }

 private:
  /// Int8 eval body: W (int8, out×in) · Xᵀ (u8, in×N) with the bias and
  /// dequantization folded into the requant epilogue, transposed back to
  /// (N, out). Requires quant_.ready.
  tensor::Tensor forward_quant(const tensor::Tensor& x);

  long in_features_, out_features_;
  std::string display_name_;
  Parameter weight_;  // (out, in)
  Parameter bias_;    // (out)
  QuantState quant_;
  tensor::Tensor cached_input_;
};

}  // namespace hsconas::nn
