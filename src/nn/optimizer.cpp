#include "nn/optimizer.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace hsconas::nn {

SGD::SGD(std::vector<Parameter*> params, Config config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) {
    HSCONAS_CHECK_MSG(p != nullptr, "SGD: null parameter");
    velocity_.emplace_back(p->value.shape());
  }
}

double SGD::step() {
  // Global gradient norm across all parameters.
  double sq = 0.0;
  for (const Parameter* p : params_) {
    for (float g : p->grad.flat()) sq += static_cast<double>(g) * g;
  }
  const double norm = std::sqrt(sq);
  double scale = 1.0;
  if (config_.grad_clip_norm > 0.0 && norm > config_.grad_clip_norm) {
    scale = config_.grad_clip_norm / (norm + 1e-12);
  }

  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    tensor::Tensor& v = velocity_[i];
    const float decay =
        p.apply_weight_decay ? static_cast<float>(config_.weight_decay)
                             : 0.0f;
    const float mom = static_cast<float>(config_.momentum);
    const float lr = static_cast<float>(config_.lr);
    const float fscale = static_cast<float>(scale);

    float* value = p.value.data();
    float* grad = p.grad.data();
    float* vel = v.data();
    const long n = p.value.numel();
    for (long j = 0; j < n; ++j) {
      const float g = grad[j] * fscale + decay * value[j];
      vel[j] = mom * vel[j] + g;
      value[j] -= lr * vel[j];
    }
  }
  return norm;
}

void SGD::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

void SGD::export_state(util::ByteWriter& out) const {
  out.u64(velocity_.size());
  for (const tensor::Tensor& v : velocity_) {
    out.vec_f32(v.data(), static_cast<std::size_t>(v.numel()));
  }
}

void SGD::import_state(util::ByteReader& in) {
  const std::uint64_t count = in.u64();
  if (count != velocity_.size()) {
    throw Error("SGD::import_state: " + std::to_string(count) +
                " velocity buffers, optimizer has " +
                std::to_string(velocity_.size()));
  }
  for (tensor::Tensor& v : velocity_) {
    in.vec_f32_into(v.data(), static_cast<std::size_t>(v.numel()));
  }
}

CosineSchedule::CosineSchedule(double base_lr, long total_steps,
                               long warmup_steps, double final_lr)
    : base_lr_(base_lr),
      final_lr_(final_lr),
      total_steps_(total_steps),
      warmup_steps_(warmup_steps) {
  if (total_steps <= 0) {
    throw InvalidArgument("CosineSchedule: total_steps must be > 0");
  }
  if (warmup_steps < 0 || warmup_steps >= total_steps) {
    throw InvalidArgument(
        "CosineSchedule: warmup_steps must be in [0, total_steps)");
  }
}

double CosineSchedule::lr_at(long step) const {
  if (step < warmup_steps_) {
    // Linear ramp from base_lr/warmup to base_lr.
    return base_lr_ * static_cast<double>(step + 1) /
           static_cast<double>(warmup_steps_);
  }
  const long cos_steps = total_steps_ - warmup_steps_;
  const long k = std::min(step - warmup_steps_, cos_steps - 1);
  const double t =
      static_cast<double>(k) / static_cast<double>(std::max<long>(1, cos_steps - 1));
  return final_lr_ + 0.5 * (base_lr_ - final_lr_) *
                         (1.0 + std::cos(std::numbers::pi * t));
}

}  // namespace hsconas::nn
