#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace hsconas::nn {

using tensor::Tensor;

Tensor softmax(const Tensor& logits) {
  if (logits.ndim() != 2) {
    throw InvalidArgument("softmax: expected (N, C) logits");
  }
  const long n = logits.dim(0), c = logits.dim(1);
  Tensor probs(logits.shape());
  for (long s = 0; s < n; ++s) {
    const float* row = logits.data() + s * c;
    float* out = probs.data() + s * c;
    float mx = row[0];
    for (long j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (long j = 0; j < c; ++j) {
      out[j] = std::exp(row[j] - mx);
      denom += out[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (long j = 0; j < c; ++j) out[j] *= inv;
  }
  return probs;
}

LossResult cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                         double label_smoothing) {
  if (logits.ndim() != 2) {
    throw InvalidArgument("cross_entropy: expected (N, C) logits");
  }
  const long n = logits.dim(0), c = logits.dim(1);
  if (static_cast<long>(labels.size()) != n) {
    throw InvalidArgument("cross_entropy: labels/batch size mismatch");
  }
  if (label_smoothing < 0.0 || label_smoothing >= 1.0) {
    throw InvalidArgument("cross_entropy: label_smoothing out of [0, 1)");
  }

  LossResult result;
  result.grad = Tensor(logits.shape());
  const double off = label_smoothing / static_cast<double>(c);
  const double on = 1.0 - label_smoothing + off;

  Tensor probs = softmax(logits);
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);

  for (long s = 0; s < n; ++s) {
    const int label = labels[static_cast<std::size_t>(s)];
    if (label < 0 || label >= c) {
      throw InvalidArgument("cross_entropy: label out of range");
    }
    const float* p = probs.data() + s * c;
    float* g = result.grad.data() + s * c;

    // loss = -sum_j target_j * log p_j ; grad = (p - target) / N
    for (long j = 0; j < c; ++j) {
      const double target = (j == label) ? on : off;
      if (target > 0.0) {
        total -= target * std::log(std::max<double>(p[j], 1e-12));
      }
      g[j] = (p[j] - static_cast<float>(target)) * inv_n;
    }

    // top-1 / top-5 bookkeeping.
    long best = 0;
    for (long j = 1; j < c; ++j) {
      if (p[j] > p[best]) best = j;
    }
    if (best == label) ++result.correct_top1;
    long rank = 0;  // how many classes scored strictly above the label
    for (long j = 0; j < c; ++j) {
      if (p[j] > p[label]) ++rank;
    }
    if (rank < 5) ++result.correct_top5;
  }
  result.loss = total / static_cast<double>(n);
  return result;
}

}  // namespace hsconas::nn
