#pragma once

#include "nn/module.h"

namespace hsconas::nn {

/// Channel shuffle with `groups` groups (ShuffleNetV2 uses 2): reorder the
/// channel dimension from (g, c/g) to (c/g, g) so information crosses the
/// split branches. A pure permutation — backward applies the inverse.
class ChannelShuffle : public Module {
 public:
  explicit ChannelShuffle(long groups = 2);

  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  std::string name() const override { return "channel_shuffle"; }

 private:
  long groups_;
};

/// Split an NCHW tensor into two channel halves / concatenate back —
/// free functions since they carry no state.
void split_channels(const tensor::Tensor& x, long left_channels,
                    tensor::Tensor& left, tensor::Tensor& right);
tensor::Tensor concat_channels(const tensor::Tensor& left,
                               const tensor::Tensor& right);

}  // namespace hsconas::nn
