#pragma once

#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "tensor/gemm.h"

namespace hsconas::nn {

/// Process-wide opt-in switch for inference-time conv→bn→act epilogue
/// fusion. Default off: training and every existing eval path are
/// bit-for-bit untouched unless a caller (bench, lowering consumer,
/// serving harness) explicitly enables fusion. When on, Sequential's
/// eval-mode forward peepholes Conv2d → BatchNorm2d [→ ReLU | HSwish]
/// runs into a single fused_conv_bn_act call.
void set_inference_fusion(bool on);
bool inference_fusion_enabled();

/// One-pass y = act(bn(conv(x))) with eval-mode (running-statistic) BN:
/// folds the conv bias and BN into a per-channel affine
///   scale[c] = gamma[c] / sqrt(running_var[c] + eps)
///   shift[c] = beta[c] + scale[c] * (bias[c] - running_mean[c])
/// and applies it, plus the activation, inside the convolution GEMM's
/// C-writeback — conv + bias + BN + act in one memory pass over the
/// output. The scale/shift buffers are leased from the thread-local
/// Workspace, so the steady-state path allocates nothing.
///
/// In the gamma == 1, running_mean == 0, bias-free case the folded affine
/// is arithmetically identical to the composed modules (tolerance 0);
/// otherwise it differs only by float rounding of the refactored affine.
/// BN must be used in eval semantics: the caller is responsible for the
/// module being out of training mode. Neither module caches activations,
/// so backward() afterwards is a contract violation.
tensor::Tensor fused_conv_bn_act(Conv2d& conv, BatchNorm2d& bn,
                                 tensor::EpilogueAct act,
                                 const tensor::Tensor& x);

}  // namespace hsconas::nn
