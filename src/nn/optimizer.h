#pragma once

#include <vector>

#include "nn/module.h"
#include "util/serial.h"

namespace hsconas::nn {

/// SGD with momentum, decoupled-by-flag L2 weight decay and global-norm
/// gradient clipping — the paper's training recipe (§IV-A: momentum 0.9,
/// weight decay 3e-5, norm clip 5).
class SGD {
 public:
  struct Config {
    double lr = 0.5;
    double momentum = 0.9;
    double weight_decay = 3e-5;
    double grad_clip_norm = 5.0;  ///< <= 0 disables clipping
  };

  SGD(std::vector<Parameter*> params, Config config);

  /// Apply one update using the gradients currently accumulated in the
  /// parameters. Returns the pre-clip global gradient norm.
  double step();

  void zero_grad();

  void set_lr(double lr) { config_.lr = lr; }
  double lr() const { return config_.lr; }
  const Config& config() const { return config_; }

  /// Serialize the momentum buffers (the optimizer's only state across
  /// steps — Config is reconstructed, not checkpointed). import_state
  /// validates count and per-buffer shape against the bound parameters.
  void export_state(util::ByteWriter& out) const;
  void import_state(util::ByteReader& in);

 private:
  std::vector<Parameter*> params_;
  std::vector<tensor::Tensor> velocity_;
  Config config_;
};

/// Cosine-annealed learning-rate schedule with optional linear warm-up
/// (paper: lr 0.5 → 0 cosine over 100 epochs; 5-epoch warm-up when training
/// discovered nets from scratch).
class CosineSchedule {
 public:
  CosineSchedule(double base_lr, long total_steps, long warmup_steps = 0,
                 double final_lr = 0.0);

  /// LR for 0-based step index (clamps past the end).
  double lr_at(long step) const;

 private:
  double base_lr_, final_lr_;
  long total_steps_, warmup_steps_;
};

}  // namespace hsconas::nn
