#include "nn/blocks.h"

#include "nn/activation.h"
#include "nn/batchnorm.h"

namespace hsconas::nn {

using tensor::Tensor;

const char* block_kind_name(BlockKind kind) {
  switch (kind) {
    case BlockKind::kShuffleK3: return "shuffle_k3";
    case BlockKind::kShuffleK5: return "shuffle_k5";
    case BlockKind::kShuffleK7: return "shuffle_k7";
    case BlockKind::kXception: return "xception";
    case BlockKind::kSkip: return "skip";
  }
  return "?";
}

long block_kernel(BlockKind kind) {
  switch (kind) {
    case BlockKind::kShuffleK5: return 5;
    case BlockKind::kShuffleK7: return 7;
    default: return 3;
  }
}

namespace {

struct BranchBuilder {
  Sequential& seq;
  util::Rng& rng;
  const std::string& prefix;
  std::vector<ChannelMask*>& masks;
  int idx = 0;

  std::string tag(const char* what) {
    return prefix + "." + what + std::to_string(idx++);
  }

  void pw(long in, long out, bool relu) {
    seq.add(std::make_unique<Conv2d>(in, out, 1, 1, 0, 1, false, rng,
                                     tag("pw")));
    seq.add(std::make_unique<BatchNorm2d>(out, 0.1, 1e-5, tag("bn")));
    if (relu) seq.add(std::make_unique<ReLU>());
  }

  void dw(long channels, long kernel, long stride) {
    seq.add(std::make_unique<Conv2d>(channels, channels, kernel, stride,
                                     kernel / 2, channels, false, rng,
                                     tag("dw")));
    seq.add(std::make_unique<BatchNorm2d>(channels, 0.1, 1e-5, tag("bn")));
  }

  void mask(long channels) {
    masks.push_back(seq.add(std::make_unique<ChannelMask>(channels)));
  }
};

}  // namespace

ShuffleChoiceBlock::ShuffleChoiceBlock(BlockKind kind, long in_channels,
                                       long out_channels, long stride,
                                       util::Rng& rng,
                                       std::string display_name)
    : kind_(kind),
      in_channels_(in_channels),
      out_channels_(out_channels),
      stride_(stride),
      mid_channels_(0),
      display_name_(std::move(display_name)) {
  if (stride != 1 && stride != 2) {
    throw InvalidArgument("ShuffleChoiceBlock: stride must be 1 or 2");
  }
  if (stride == 1 && in_channels != out_channels) {
    throw InvalidArgument(
        "ShuffleChoiceBlock: stride-1 blocks require in == out channels");
  }
  if (out_channels % 2 != 0) {
    throw InvalidArgument("ShuffleChoiceBlock: out channels must be even");
  }

  const long kernel = block_kernel(kind);

  if (kind == BlockKind::kSkip) {
    if (stride == 1) {
      pure_identity_ = true;  // true skip: y = x, no parameters
      return;
    }
    // Skip at a reduction layer lowers to the minimal projection so the
    // layer can still change geometry (keeps K = 5 everywhere).
    main_ = std::make_unique<Sequential>(display_name_ + ".skip_proj");
    BranchBuilder b{*main_, rng, display_name_, masks_};
    b.dw(in_channels, 3, 2);
    b.pw(in_channels, out_channels, /*relu=*/true);
    return;
  }

  const long branch_out = out_channels / 2;
  mid_channels_ = branch_out;  // Sˡ of the paper's dynamic channel scaling
  const long branch_in = (stride == 1) ? in_channels / 2 : in_channels;
  split_left_ = (stride == 1) ? in_channels / 2 : branch_out;

  main_ = std::make_unique<Sequential>(display_name_ + ".main");
  BranchBuilder b{*main_, rng, display_name_, masks_};

  if (kind == BlockKind::kXception) {
    b.dw(branch_in, 3, stride);
    b.pw(branch_in, mid_channels_, /*relu=*/true);
    b.mask(mid_channels_);
    b.dw(mid_channels_, 3, 1);
    b.mask(mid_channels_);
    b.pw(mid_channels_, mid_channels_, /*relu=*/true);
    b.mask(mid_channels_);
    b.dw(mid_channels_, 3, 1);
    b.mask(mid_channels_);
    b.pw(mid_channels_, branch_out, /*relu=*/true);
  } else {
    b.pw(branch_in, mid_channels_, /*relu=*/true);
    b.mask(mid_channels_);
    b.dw(mid_channels_, kernel, stride);
    b.mask(mid_channels_);
    b.pw(mid_channels_, branch_out, /*relu=*/true);
  }

  if (stride == 2) {
    proj_ = std::make_unique<Sequential>(display_name_ + ".proj");
    BranchBuilder p{*proj_, rng, display_name_ + ".proj", masks_};
    // The projection branch has fixed width (not searchable), so it adds no
    // masks; BranchBuilder.mask is simply never called here.
    p.dw(in_channels, 3, 2);
    p.pw(in_channels, branch_out, /*relu=*/true);
  }

  shuffle_ = std::make_unique<ChannelShuffle>(2);
}

void ShuffleChoiceBlock::set_channel_factor(double factor) {
  if (factor <= 0.0 || factor > 1.0) {
    throw InvalidArgument("set_channel_factor: factor must be in (0, 1]");
  }
  channel_factor_ = factor;
  if (mid_channels_ == 0) return;  // skip ops have no searchable width
  const long active = scaled_channels(mid_channels_, factor);
  for (ChannelMask* m : masks_) m->set_active(active);
}

long ShuffleChoiceBlock::active_mid_channels() const {
  if (mid_channels_ == 0) return 0;
  return scaled_channels(mid_channels_, channel_factor_);
}

Tensor ShuffleChoiceBlock::forward(const Tensor& x) {
  if (pure_identity_) return x;
  if (kind_ == BlockKind::kSkip) return main_->forward(x);  // stride-2 skip
  return stride_ == 1 ? forward_stride1(x) : forward_stride2(x);
}

Tensor ShuffleChoiceBlock::backward(const Tensor& dy) {
  if (pure_identity_) return dy;
  if (kind_ == BlockKind::kSkip) return main_->backward(dy);
  return stride_ == 1 ? backward_stride1(dy) : backward_stride2(dy);
}

Tensor ShuffleChoiceBlock::forward_stride1(const Tensor& x) {
  Tensor left, right;
  split_channels(x, split_left_, left, right);
  Tensor main_out = main_->forward(right);
  return shuffle_->forward(concat_channels(left, main_out));
}

Tensor ShuffleChoiceBlock::backward_stride1(const Tensor& dy) {
  Tensor d = shuffle_->backward(dy);
  Tensor d_left, d_main;
  split_channels(d, split_left_, d_left, d_main);
  Tensor dx_right = main_->backward(d_main);
  return concat_channels(d_left, dx_right);
}

Tensor ShuffleChoiceBlock::forward_stride2(const Tensor& x) {
  Tensor proj_out = proj_->forward(x);
  Tensor main_out = main_->forward(x);
  return shuffle_->forward(concat_channels(proj_out, main_out));
}

Tensor ShuffleChoiceBlock::backward_stride2(const Tensor& dy) {
  Tensor d = shuffle_->backward(dy);
  Tensor d_proj, d_main;
  split_channels(d, split_left_, d_proj, d_main);
  Tensor dx = proj_->backward(d_proj);
  dx.add_(main_->backward(d_main));
  return dx;
}

void ShuffleChoiceBlock::collect_params(std::vector<Parameter*>& out) {
  if (main_) main_->collect_params(out);
  if (proj_) proj_->collect_params(out);
}

void ShuffleChoiceBlock::set_training(bool training) {
  Module::set_training(training);
  if (main_) main_->set_training(training);
  if (proj_) proj_->set_training(training);
}

void ShuffleChoiceBlock::visit(const std::function<void(Module&)>& fn) {
  fn(*this);
  if (main_) main_->visit(fn);
  if (proj_) proj_->visit(fn);
  if (shuffle_) shuffle_->visit(fn);
}

std::unique_ptr<ShuffleChoiceBlock> make_choice_block(
    BlockKind kind, long in_channels, long out_channels, long stride,
    util::Rng& rng, std::string display_name) {
  return std::make_unique<ShuffleChoiceBlock>(kind, in_channels, out_channels,
                                              stride, rng,
                                              std::move(display_name));
}

}  // namespace hsconas::nn
