#pragma once

#include "nn/module.h"

namespace hsconas::nn {

/// Elementwise max(0, x).
class ReLU : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  std::string name() const override { return "relu"; }

 private:
  tensor::Tensor mask_;  // 1 where x > 0
};

/// Hard-swish: x * relu6(x + 3) / 6 (MobileNetV3's activation; available for
/// users extending the operator set).
class HSwish : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& x) override;
  tensor::Tensor backward(const tensor::Tensor& dy) override;
  std::string name() const override { return "hswish"; }

 private:
  tensor::Tensor cached_input_;
};

}  // namespace hsconas::nn
