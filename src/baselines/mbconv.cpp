#include "baselines/mbconv.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace hsconas::baselines {

using hwsim::LayerDesc;
using hwsim::OpDescriptor;

namespace {
void push_eltwise(LayerDesc& layer, long ch, long h, long w) {
  layer.ops.push_back(OpDescriptor::elementwise(ch, h, w));
}
}  // namespace

LayerDesc mbconv_layer(const MbConvSpec& spec, long h, long w,
                       const std::string& name) {
  if (spec.in_channels <= 0 || spec.out_channels <= 0 || spec.stride < 1 ||
      spec.expand <= 0.0) {
    throw InvalidArgument("mbconv_layer: bad spec for " + name);
  }
  LayerDesc layer;
  layer.name = name;
  const long mid = std::max<long>(
      1, static_cast<long>(std::llround(static_cast<double>(spec.in_channels) *
                                        spec.expand)));
  const long oh = (spec.stride == 2) ? (h + 1) / 2 : h;
  const long ow = (spec.stride == 2) ? (w + 1) / 2 : w;

  long cur = spec.in_channels;
  if (mid != spec.in_channels) {  // t = 1 blocks skip the expansion conv
    layer.ops.push_back(OpDescriptor::conv(cur, mid, h, w, 1, 1, 1));
    push_eltwise(layer, mid, h, w);
    cur = mid;
  }
  layer.ops.push_back(
      OpDescriptor::depthwise(cur, h, w, spec.kernel, spec.stride));
  push_eltwise(layer, cur, oh, ow);

  if (spec.squeeze_excite) {
    const long squeezed = std::max<long>(1, cur / 4);
    OpDescriptor gap = OpDescriptor::pool(cur, oh, ow, oh, oh);
    gap.pad = 0;
    layer.ops.push_back(gap);
    layer.ops.push_back(OpDescriptor::linear(cur, squeezed));
    layer.ops.push_back(OpDescriptor::linear(squeezed, cur));
    push_eltwise(layer, cur, oh, ow);  // scale back onto the map
  }

  layer.ops.push_back(OpDescriptor::conv(cur, spec.out_channels, oh, ow, 1,
                                         1, 1));
  push_eltwise(layer, spec.out_channels, oh, ow);

  if (spec.stride == 1 && spec.in_channels == spec.out_channels) {
    push_eltwise(layer, spec.out_channels, oh, ow);  // residual add
  }

  layer.out_channels = spec.out_channels;
  layer.out_h = oh;
  layer.out_w = ow;
  if (spec.fused_epilogue) hwsim::fuse_conv_epilogues(layer);
  return layer;
}

LayerDesc conv_bn_layer(long in_ch, long out_ch, long h, long w, long kernel,
                        long stride, const std::string& name,
                        bool fused_epilogue) {
  LayerDesc layer;
  layer.name = name;
  layer.ops.push_back(
      OpDescriptor::conv(in_ch, out_ch, h, w, kernel, stride, 1));
  // Copy the output geometry out before push_eltwise grows the vector:
  // a reference to ops.back() would dangle across the reallocation.
  const long oh = layer.ops.back().out_h();
  const long ow = layer.ops.back().out_w();
  push_eltwise(layer, out_ch, oh, ow);
  layer.out_channels = out_ch;
  layer.out_h = oh;
  layer.out_w = ow;
  if (fused_epilogue) hwsim::fuse_conv_epilogues(layer);
  return layer;
}

LayerDesc sepconv_layer(long in_ch, long out_ch, long h, long w, long kernel,
                        long stride, const std::string& name,
                        bool fused_epilogue) {
  LayerDesc layer;
  layer.name = name;
  layer.ops.push_back(OpDescriptor::depthwise(in_ch, h, w, kernel, stride));
  const long oh = layer.ops.back().out_h(), ow = layer.ops.back().out_w();
  push_eltwise(layer, in_ch, oh, ow);
  layer.ops.push_back(OpDescriptor::conv(in_ch, out_ch, oh, ow, 1, 1, 1));
  push_eltwise(layer, out_ch, oh, ow);
  layer.out_channels = out_ch;
  layer.out_h = oh;
  layer.out_w = ow;
  if (fused_epilogue) hwsim::fuse_conv_epilogues(layer);
  return layer;
}

LayerDesc head_layer(long in_ch, long head_ch, long classes, long h, long w,
                     const std::string& name) {
  LayerDesc layer;
  layer.name = name;
  layer.ops.push_back(OpDescriptor::conv(in_ch, head_ch, h, w, 1, 1, 1));
  push_eltwise(layer, head_ch, h, w);
  OpDescriptor gap = OpDescriptor::pool(head_ch, h, w, h, h);
  gap.pad = 0;
  layer.ops.push_back(gap);
  layer.ops.push_back(OpDescriptor::linear(head_ch, classes));
  layer.out_channels = classes;
  layer.out_h = 1;
  layer.out_w = 1;
  return layer;
}

}  // namespace hsconas::baselines
