#pragma once

#include <string>
#include <vector>

#include "hwsim/op_descriptor.h"

namespace hsconas::baselines {

/// A Table I comparison network: its published ImageNet metrics plus an
/// operator-level descriptor of its architecture for the device simulator.
///
/// MobileNetV2/V3, ShuffleNetV2 and MnasNet-A1 follow their published
/// layer tables exactly. FBNet-A/B/C and the three ProxylessNAS variants
/// are reconstructed as MBConv chains matching their published
/// compute/parameter budgets and macro-shape (exact per-layer choices are
/// in their papers' appendices; the latency-relevant structure — depth,
/// widths, kernel mix, fragmentation — is preserved). DARTS is lowered
/// cell-by-cell, which is what makes it slow on CPU despite moderate
/// FLOPs: ~8 separable convs plus joins per cell, ×14 cells.
struct Baseline {
  std::string name;
  std::string group;  ///< "manual" or "nas"
  double paper_top1_err = 0.0;
  double paper_top5_err = -1.0;  ///< -1 when the paper leaves it blank
  double paper_gpu_ms = 0.0;
  double paper_cpu_ms = 0.0;
  double paper_edge_ms = 0.0;
  hwsim::NetworkDesc network;
};

/// All 12 Table I baselines, in the paper's row order.
std::vector<Baseline> baseline_zoo(int num_classes = 1000,
                                   long input_size = 224);

/// Individual builders (exposed for tests and examples).
hwsim::NetworkDesc mobilenet_v2(double width = 1.0, int classes = 1000,
                                long input = 224);
hwsim::NetworkDesc shufflenet_v2_15(int classes = 1000, long input = 224);
hwsim::NetworkDesc mobilenet_v3_large(int classes = 1000, long input = 224);
hwsim::NetworkDesc darts_imagenet(int classes = 1000, long input = 224);
hwsim::NetworkDesc mnasnet_a1(int classes = 1000, long input = 224);
hwsim::NetworkDesc fbnet(char variant, int classes = 1000, long input = 224);
hwsim::NetworkDesc proxylessnas(const std::string& target, int classes = 1000,
                                long input = 224);

}  // namespace hsconas::baselines
