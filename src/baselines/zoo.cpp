#include "baselines/zoo.h"

#include <cmath>

#include "baselines/mbconv.h"
#include "core/lowering.h"
#include "util/error.h"
#include "util/string_util.h"

namespace hsconas::baselines {

using hwsim::LayerDesc;
using hwsim::NetworkDesc;
using hwsim::OpDescriptor;

namespace {

/// (expansion t, channels c, repeats n, first stride s, kernel k, SE).
struct StageSpec {
  double t;
  long c;
  int n;
  long s;
  long k;
  bool se = false;
};

long scale_ch(long ch, double width) {
  // Round to a multiple of 8, never below 8 — the MobileNet convention.
  const double scaled = static_cast<double>(ch) * width;
  long rounded = static_cast<long>(std::llround(scaled / 8.0)) * 8;
  if (rounded < 8) rounded = 8;
  return rounded;
}

/// Append an MBConv stage list after the stem; returns (channels, size).
void append_stages(NetworkDesc& net, const std::vector<StageSpec>& stages,
                   long& ch, long& size, const std::string& prefix) {
  int index = 0;
  for (const StageSpec& stage : stages) {
    for (int i = 0; i < stage.n; ++i) {
      MbConvSpec spec;
      spec.in_channels = ch;
      spec.out_channels = stage.c;
      spec.kernel = stage.k;
      spec.stride = (i == 0) ? stage.s : 1;
      spec.expand = stage.t;
      spec.squeeze_excite = stage.se;
      net.push_back(mbconv_layer(spec, size, size,
                                 util::format("%s.mb%d", prefix.c_str(),
                                              index++)));
      if (spec.stride == 2) size = (size + 1) / 2;
      ch = stage.c;
    }
  }
}

}  // namespace

NetworkDesc mobilenet_v2(double width, int classes, long input) {
  NetworkDesc net;
  long size = input;
  long ch = scale_ch(32, width);
  net.push_back(conv_bn_layer(3, ch, size, size, 3, 2, "stem"));
  size = (size + 1) / 2;

  const std::vector<StageSpec> stages = {
      {1, scale_ch(16, width), 1, 1, 3},  {6, scale_ch(24, width), 2, 2, 3},
      {6, scale_ch(32, width), 3, 2, 3},  {6, scale_ch(64, width), 4, 2, 3},
      {6, scale_ch(96, width), 3, 1, 3},  {6, scale_ch(160, width), 3, 2, 3},
      {6, scale_ch(320, width), 1, 1, 3}};
  append_stages(net, stages, ch, size, "body");

  const long head = width > 1.0 ? scale_ch(1280, width) : 1280;
  net.push_back(head_layer(ch, head, classes, size, size, "head"));
  return net;
}

NetworkDesc shufflenet_v2_15(int classes, long input) {
  // ShuffleNetV2 1.5×: stages [4, 8, 4], channels [176, 352, 704] — built
  // by reusing the core lowering with fixed k3 blocks at full width.
  NetworkDesc net;
  long size = input;
  net.push_back(conv_bn_layer(3, 24, size, size, 3, 2, "stem"));
  size = (size + 1) / 2;
  {
    LayerDesc pool;
    pool.name = "stem.maxpool";
    pool.ops.push_back(OpDescriptor::pool(24, size, size, 3, 2));
    size = (size + 1) / 2;
    pool.out_channels = 24;
    pool.out_h = size;
    pool.out_w = size;
    net.push_back(pool);
  }

  long ch = 24;
  const std::vector<std::pair<long, int>> stages = {{176, 4}, {352, 8},
                                                    {704, 4}};
  int index = 0;
  for (const auto& [out_ch, blocks] : stages) {
    for (int b = 0; b < blocks; ++b) {
      core::LayerInfo info;
      info.index = index++;
      info.stride = (b == 0) ? 2 : 1;
      info.in_channels = (b == 0) ? ch : out_ch;
      info.out_channels = out_ch;
      info.in_h = size;
      info.in_w = size;
      net.push_back(
          core::lower_layer(info, nn::BlockKind::kShuffleK3, 1.0));
      if (info.stride == 2) size = (size + 1) / 2;
    }
    ch = out_ch;
  }
  net.push_back(head_layer(ch, 1024, classes, size, size, "head"));
  return net;
}

NetworkDesc mobilenet_v3_large(int classes, long input) {
  NetworkDesc net;
  long size = input;
  long ch = 16;
  net.push_back(conv_bn_layer(3, ch, size, size, 3, 2, "stem"));
  size = (size + 1) / 2;

  // (kernel, absolute expansion size, out channels, SE, stride) per the
  // MobileNetV3 paper's Table 1 (large).
  struct V3Row {
    long k, exp, out;
    bool se;
    long s;
  };
  const std::vector<V3Row> rows = {
      {3, 16, 16, false, 1},  {3, 64, 24, false, 2},  {3, 72, 24, false, 1},
      {5, 72, 40, true, 2},   {5, 120, 40, true, 1},  {5, 120, 40, true, 1},
      {3, 240, 80, false, 2}, {3, 200, 80, false, 1}, {3, 184, 80, false, 1},
      {3, 184, 80, false, 1}, {3, 480, 112, true, 1}, {3, 672, 112, true, 1},
      {5, 672, 160, true, 2}, {5, 960, 160, true, 1}, {5, 960, 160, true, 1}};
  int index = 0;
  for (const V3Row& row : rows) {
    MbConvSpec spec;
    spec.in_channels = ch;
    spec.out_channels = row.out;
    spec.kernel = row.k;
    spec.stride = row.s;
    spec.expand = static_cast<double>(row.exp) / static_cast<double>(ch);
    spec.squeeze_excite = row.se;
    net.push_back(
        mbconv_layer(spec, size, size, util::format("body.mb%d", index++)));
    if (row.s == 2) size = (size + 1) / 2;
    ch = row.out;
  }

  // Head: 1×1 conv to 960, pool, FC 1280, FC classes.
  LayerDesc head;
  head.name = "head";
  head.ops.push_back(OpDescriptor::conv(ch, 960, size, size, 1, 1, 1));
  head.ops.push_back(OpDescriptor::elementwise(960, size, size));
  OpDescriptor gap = OpDescriptor::pool(960, size, size, size, size);
  gap.pad = 0;
  head.ops.push_back(gap);
  head.ops.push_back(OpDescriptor::linear(960, 1280));
  head.ops.push_back(OpDescriptor::linear(1280, classes));
  head.out_channels = classes;
  head.out_h = 1;
  head.out_w = 1;
  net.push_back(head);
  return net;
}

NetworkDesc darts_imagenet(int classes, long input) {
  // DARTS (2nd-order) ImageNet transfer: a three-conv stride-2 stem
  // (224 → 28), then 14 cells with reductions at 1/3 and 2/3 of the depth
  // (C = 48 → 96 → 192). Each cell preprocesses its 4C-wide input down to
  // C, runs 8 separable convolutions on C channels (each sep conv = two
  // dw+pw passes), joins 4 nodes and concatenates them back to 4C. The
  // resulting op-count fragmentation is what makes DARTS slow on CPU
  // despite moderate FLOPs (~0.57 GMacs).
  NetworkDesc net;
  long size = input;
  net.push_back(conv_bn_layer(3, 48, size, size, 3, 2, "stem0"));
  size = (size + 1) / 2;
  net.push_back(conv_bn_layer(48, 48, size, size, 3, 2, "stem1"));
  size = (size + 1) / 2;
  net.push_back(conv_bn_layer(48, 96, size, size, 3, 2, "stem2"));
  size = (size + 1) / 2;  // 28×28
  long prev_out = 96;     // channels entering the first cell

  const int cells = 14;
  long c = 48;  // per-op cell width
  for (int cell = 0; cell < cells; ++cell) {
    const bool reduction = (cell == cells / 3 || cell == 2 * cells / 3);
    LayerDesc layer;
    layer.name = util::format("cell%d%s", cell, reduction ? ".reduce" : "");
    // Preprocess: 1×1 conv squeezing the previous cell's 4C output to C;
    // in reduction cells it also carries the stride-2 (as DARTS's
    // factorized-reduce preprocessing does).
    const long in_size = size;
    if (reduction) {
      size = (size + 1) / 2;
      c *= 2;
    }
    layer.ops.push_back(OpDescriptor::conv(prev_out, c, in_size, in_size, 1,
                                           reduction ? 2 : 1, 1));
    layer.ops.push_back(OpDescriptor::elementwise(c, size, size));
    // 8 ops per cell: 6 sep_conv_3x3 + 2 sep_conv_5x5, each applied twice.
    for (int op = 0; op < 8; ++op) {
      const long k = (op < 6) ? 3 : 5;
      for (int pass = 0; pass < 2; ++pass) {
        layer.ops.push_back(OpDescriptor::depthwise(c, size, size, k, 1));
        layer.ops.push_back(OpDescriptor::elementwise(c, size, size));
        layer.ops.push_back(OpDescriptor::conv(c, c, size, size, 1, 1, 1));
        layer.ops.push_back(OpDescriptor::elementwise(c, size, size));
      }
    }
    // 4 node joins + the output concat of the 4 nodes (4C channels).
    for (int j = 0; j < 4; ++j) {
      layer.ops.push_back(OpDescriptor::elementwise(c, size, size));
    }
    layer.ops.push_back(OpDescriptor::shuffle(4 * c, size, size));
    prev_out = 4 * c;
    layer.out_channels = prev_out;
    layer.out_h = size;
    layer.out_w = size;
    net.push_back(layer);
  }
  net.push_back(head_layer(prev_out, 768, classes, size, size, "head"));
  return net;
}

NetworkDesc mnasnet_a1(int classes, long input) {
  NetworkDesc net;
  long size = input;
  long ch = 32;
  net.push_back(conv_bn_layer(3, ch, size, size, 3, 2, "stem"));
  size = (size + 1) / 2;
  net.push_back(sepconv_layer(ch, 16, size, size, 3, 1, "sep"));
  ch = 16;

  const std::vector<StageSpec> stages = {
      {6, 24, 2, 2, 3, false}, {3, 40, 3, 2, 5, true},
      {6, 80, 4, 2, 3, false}, {6, 112, 2, 1, 3, true},
      {6, 160, 3, 2, 5, true}, {6, 320, 1, 1, 3, false}};
  append_stages(net, stages, ch, size, "body");
  net.push_back(head_layer(ch, 1280, classes, size, size, "head"));
  return net;
}

NetworkDesc fbnet(char variant, int classes, long input) {
  NetworkDesc net;
  long size = input;
  long ch = 16;
  net.push_back(conv_bn_layer(3, ch, size, size, 3, 2, "stem"));
  size = (size + 1) / 2;

  std::vector<StageSpec> stages;
  long head = 1984;
  switch (variant) {
    case 'A':
      stages = {{1, 16, 1, 1, 3},  {3, 24, 1, 2, 3}, {1, 24, 3, 1, 3},
                {6, 32, 1, 2, 5},  {3, 32, 3, 1, 3}, {6, 64, 1, 2, 5},
                {3, 64, 3, 1, 3},  {6, 112, 1, 1, 5}, {3, 112, 3, 1, 3},
                {6, 184, 1, 2, 5}, {3, 184, 3, 1, 5}, {6, 352, 1, 1, 3}};
      head = 1504;
      break;
    case 'B':
      stages = {{1, 16, 1, 1, 3},  {6, 24, 1, 2, 3}, {1, 24, 3, 1, 3},
                {6, 32, 1, 2, 5},  {3, 32, 3, 1, 3}, {6, 64, 1, 2, 5},
                {3, 64, 3, 1, 5},  {6, 112, 1, 1, 5}, {3, 112, 3, 1, 5},
                {6, 184, 1, 2, 5}, {3, 184, 3, 1, 5}, {6, 352, 1, 1, 3}};
      break;
    case 'C':
      stages = {{1, 16, 1, 1, 3},  {6, 24, 1, 2, 3}, {1, 24, 3, 1, 3},
                {6, 32, 1, 2, 5},  {3, 32, 3, 1, 3}, {6, 64, 1, 2, 5},
                {6, 64, 3, 1, 5},  {6, 112, 1, 1, 5}, {6, 112, 3, 1, 5},
                {6, 184, 1, 2, 5}, {6, 184, 3, 1, 5}, {6, 352, 1, 1, 3}};
      break;
    default:
      throw InvalidArgument("fbnet: variant must be 'A', 'B' or 'C'");
  }
  append_stages(net, stages, ch, size, "body");
  net.push_back(head_layer(ch, head, classes, size, size, "head"));
  return net;
}

NetworkDesc proxylessnas(const std::string& target, int classes,
                         long input) {
  NetworkDesc net;
  long size = input;
  std::vector<StageSpec> stages;
  long stem_ch = 32, sep_ch = 16, head = 1280;

  if (target == "mobile") {
    stages = {{3, 24, 1, 2, 5},  {3, 24, 3, 1, 3},  {3, 40, 1, 2, 7},
              {3, 40, 3, 1, 3},  {6, 80, 1, 2, 7},  {3, 80, 3, 1, 5},
              {6, 96, 1, 1, 5},  {3, 96, 3, 1, 5},  {6, 192, 1, 2, 7},
              {6, 192, 3, 1, 7}, {6, 320, 1, 1, 7}};
  } else if (target == "gpu") {
    // Shallow-and-wide with large kernels: fewer, beefier kernels suit the
    // GPU's launch-overhead/occupancy profile.
    stem_ch = 40;
    sep_ch = 24;
    head = 1728;
    stages = {{6, 32, 1, 2, 5},  {6, 56, 1, 2, 7},  {6, 112, 1, 2, 7},
              {6, 112, 1, 1, 5}, {6, 128, 1, 1, 5}, {6, 256, 1, 2, 7},
              {6, 256, 1, 1, 7}, {6, 432, 1, 1, 7}};
  } else if (target == "cpu") {
    // Deep-and-narrow with 3×3 kernels throughout.
    stem_ch = 40;
    sep_ch = 24;
    head = 1432;
    stages = {{6, 32, 2, 2, 3},  {6, 48, 4, 2, 3}, {6, 88, 4, 2, 3},
              {6, 104, 4, 1, 3}, {6, 216, 4, 2, 3}, {6, 360, 1, 1, 3}};
  } else {
    throw InvalidArgument("proxylessnas: target must be mobile|gpu|cpu");
  }

  long ch = stem_ch;
  net.push_back(conv_bn_layer(3, ch, size, size, 3, 2, "stem"));
  size = (size + 1) / 2;
  net.push_back(sepconv_layer(ch, sep_ch, size, size, 3, 1, "sep"));
  ch = sep_ch;
  append_stages(net, stages, ch, size, "body");
  net.push_back(head_layer(ch, head, classes, size, size, "head"));
  return net;
}

std::vector<Baseline> baseline_zoo(int num_classes, long input_size) {
  std::vector<Baseline> zoo;
  const auto add = [&](std::string name, std::string group, double top1,
                       double top5, double gpu, double cpu, double edge,
                       NetworkDesc network) {
    zoo.push_back(Baseline{std::move(name), std::move(group), top1, top5,
                           gpu, cpu, edge, std::move(network)});
  };

  add("MobileNetV2 1.0x", "manual", 28.0, -1, 11.5, 25.2, 61.9,
      mobilenet_v2(1.0, num_classes, input_size));
  add("ShuffleNetV2 1.5x", "manual", 27.4, -1, 10.5, 34.3, 65.9,
      shufflenet_v2_15(num_classes, input_size));
  add("MobileNetV3 (large)", "manual", 24.8, -1, 12.2, 31.8, 61.1,
      mobilenet_v3_large(num_classes, input_size));

  add("DARTS", "nas", 26.7, 8.7, 17.3, 81.4, 68.7,
      darts_imagenet(num_classes, input_size));
  add("MnasNet-A1", "nas", 24.8, 7.5, 10.9, 26.4, 51.8,
      mnasnet_a1(num_classes, input_size));
  add("FBNet-A", "nas", 27.0, 9.1, 10.5, 21.6, 48.6,
      fbnet('A', num_classes, input_size));
  add("FBNet-B", "nas", 25.9, 8.2, 13.6, 25.5, 57.1,
      fbnet('B', num_classes, input_size));
  add("FBNet-C", "nas", 25.1, 7.7, 15.5, 28.7, 66.4,
      fbnet('C', num_classes, input_size));
  add("ProxylessNAS-GPU", "nas", 24.9, 7.5, 12.0, 24.5, 57.4,
      proxylessnas("gpu", num_classes, input_size));
  add("ProxylessNAS-CPU", "nas", 24.7, -1, 16.1, 29.6, 70.1,
      proxylessnas("cpu", num_classes, input_size));
  add("ProxylessNAS-Mobile", "nas", 25.4, 7.8, 11.5, 26.4, 53.5,
      proxylessnas("mobile", num_classes, input_size));

  return zoo;
}

}  // namespace hsconas::baselines
