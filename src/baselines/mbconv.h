#pragma once

#include <string>

#include "hwsim/op_descriptor.h"

namespace hsconas::baselines {

/// MobileNet-style inverted-residual block (MBConv) lowering for the
/// baseline zoo: 1×1 expand → k×k depthwise → (optional squeeze-excite)
/// → 1×1 project, BN/activation fused into elementwise ops, residual add
/// when geometry allows. This is the building block of MobileNetV2/V3,
/// MnasNet, FBNet and ProxylessNAS.
struct MbConvSpec {
  long in_channels = 0;
  long out_channels = 0;
  long kernel = 3;
  long stride = 1;
  double expand = 6.0;  ///< expansion ratio t
  bool squeeze_excite = false;
  /// Price BN/activation inside each conv's writeback (the fused-epilogue
  /// runtime, hwsim::fuse_conv_epilogues) instead of as separate
  /// elementwise passes. The residual add and squeeze-excite scale stay
  /// standalone ops either way.
  bool fused_epilogue = false;
};

/// Lower one MBConv at input resolution h×w.
hwsim::LayerDesc mbconv_layer(const MbConvSpec& spec, long h, long w,
                              const std::string& name);

/// Plain conv + BN/act layer (stems and heads). `fused_epilogue` drops the
/// trailing elementwise op, pricing the fused-writeback runtime.
hwsim::LayerDesc conv_bn_layer(long in_ch, long out_ch, long h, long w,
                               long kernel, long stride,
                               const std::string& name,
                               bool fused_epilogue = false);

/// Depthwise-separable conv layer (MobileNet stem follow-up, MnasNet SepConv).
hwsim::LayerDesc sepconv_layer(long in_ch, long out_ch, long h, long w,
                               long kernel, long stride,
                               const std::string& name,
                               bool fused_epilogue = false);

/// Classifier head: 1×1 conv to `head_ch`, global pool, FC to classes.
hwsim::LayerDesc head_layer(long in_ch, long head_ch, long classes, long h,
                            long w, const std::string& name);

}  // namespace hsconas::baselines
