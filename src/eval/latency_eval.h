#pragma once

#include <vector>

#include "core/latency_model.h"

namespace hsconas::eval {

/// Predicted-vs-measured evaluation of a LatencyModel over sampled
/// architectures — the machinery behind Fig. 3 and the §III-A RMSE claims.
struct LatencyEvalPoint {
  core::Arch arch;
  double predicted_ms = 0.0;
  double predicted_uncorrected_ms = 0.0;
  double measured_ms = 0.0;
  double macs = 0.0;
  double params = 0.0;
};

struct LatencyEvalReport {
  std::vector<LatencyEvalPoint> points;
  double rmse_ms = 0.0;               ///< with the bias correction B
  double rmse_uncorrected_ms = 0.0;   ///< without B
  double mae_ms = 0.0;
  double pearson = 0.0;
  double spearman = 0.0;
  double kendall_tau = 0.0;
  double bias_ms = 0.0;
};

/// Sample `num_archs` uniform architectures, predict and "measure" each,
/// and aggregate the error statistics.
LatencyEvalReport evaluate_latency_model(core::LatencyModel& model,
                                         int num_archs, std::uint64_t seed);

}  // namespace hsconas::eval
