#include "eval/latency_eval.h"

#include "core/lowering.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace hsconas::eval {

LatencyEvalReport evaluate_latency_model(core::LatencyModel& model,
                                         int num_archs, std::uint64_t seed) {
  HSCONAS_TRACE_SCOPE("eval.latency_model");
  util::Rng rng(seed);
  LatencyEvalReport report;
  report.bias_ms = model.bias_ms();
  report.points.reserve(static_cast<std::size_t>(num_archs));

  std::vector<double> predicted, uncorrected, measured;
  for (int i = 0; i < num_archs; ++i) {
    LatencyEvalPoint p;
    p.arch = core::Arch::random(model.space(), rng);
    p.predicted_ms = model.predict_ms(p.arch);
    p.predicted_uncorrected_ms = model.predict_uncorrected_ms(p.arch);
    p.measured_ms = model.measure_ms(p.arch);
    p.macs = core::arch_macs(p.arch, model.space());
    p.params = core::arch_params(p.arch, model.space());
    predicted.push_back(p.predicted_ms);
    uncorrected.push_back(p.predicted_uncorrected_ms);
    measured.push_back(p.measured_ms);
    report.points.push_back(std::move(p));
  }

  report.rmse_ms = util::rmse(predicted, measured);
  report.rmse_uncorrected_ms = util::rmse(uncorrected, measured);
  report.mae_ms = util::mae(predicted, measured);
  report.pearson = util::pearson(predicted, measured);
  report.spearman = util::spearman(predicted, measured);
  report.kendall_tau = util::kendall_tau(predicted, measured);
  return report;
}

}  // namespace hsconas::eval
