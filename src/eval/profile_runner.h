#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/arch.h"
#include "core/search_space.h"
#include "hwsim/calibration.h"
#include "nn/quantize.h"
#include "util/json.h"

namespace hsconas::eval {

/// The measurement side of the latency-model validation loop behind
/// `hsconas profile`: run N sampled architectures as standalone networks
/// with the per-operator profiler armed, then compare what the kernels
/// actually did (per-op wall/CPU time, FLOP/s, bytes, Workspace peak)
/// against the hwsim roofline prices and the LatencyModel's Eq. 2
/// prediction — per op and per arch, with Kendall-τ / Spearman-ρ rank
/// correlation (docs/OBSERVABILITY.md describes the report format).

struct ProfileConfig {
  std::string device = "xavier";
  core::SearchSpaceConfig space = core::SearchSpaceConfig::proxy();
  int num_archs = 3;   ///< sampled architectures
  int iters = 10;      ///< counted (profiled) iterations per arch
  int warmup = 2;      ///< excluded iterations, profiler disabled
  int batch = 4;
  std::uint64_t seed = 1;
  bool fused = false;     ///< eval-mode fused conv/BN/act execution
  bool backward = false;  ///< profile forward+backward (training mode)
  /// kI8 calibrates each sampled network (PTQ on its own input batch),
  /// times the int8 inference path, and prices predictions off the int8
  /// LUT (the sampled archs carry quant = 1). Incompatible with
  /// --backward: the int8 path is inference-only.
  nn::InferenceDType dtype = nn::InferenceDType::kF32;
};

struct ArchProfile {
  core::Arch arch;
  std::string arch_string;
  double measured_ms = 0.0;  ///< mean per-iteration wall time
  double measured_p50_ms = 0.0;
  double measured_p95_ms = 0.0;
  double predicted_ms = 0.0;  ///< LatencyModel Eq. 2: LUT sum + B
  double predicted_uncorrected_ms = 0.0;
  hwsim::CalibrationReport ops;  ///< per-op predicted vs measured
};

struct ProfileReport {
  ProfileConfig config;
  bool profiler_compiled_in = false;
  std::vector<ArchProfile> archs;
  /// Per-op comparison pooled across every arch's iterations.
  hwsim::CalibrationReport overall;
  /// Rank correlation of (predicted, measured) at the *architecture*
  /// level — the quantity that decides whether the LUT model can steer
  /// the search (needs >= 2 archs).
  double arch_kendall_tau = 0.0;
  double arch_spearman_rho = 0.0;
};

/// Throws InvalidArgument on nonsense configs (fused training, zero
/// iterations, unknown device). Works with the profiler compiled out:
/// arch-level timings and correlations still fill in, op sections are
/// empty and `profiler_compiled_in` is false.
ProfileReport run_profile(const ProfileConfig& config);

/// Schema "hsconas.profile.v1": config echo, per-arch op rooflines,
/// pooled ops, worst offenders, correlation block.
util::Json profile_report_json(const ProfileReport& report);

/// Human-readable tables: per-arch predicted-vs-measured, the pooled
/// roofline, worst offenders, correlation summary.
std::string render_profile_report(const ProfileReport& report);

}  // namespace hsconas::eval
