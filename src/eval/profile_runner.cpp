#include "eval/profile_runner.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "core/latency_model.h"
#include "core/supernet.h"
#include "hwsim/registry.h"
#include "nn/fused_conv.h"
#include "obs/profiler.h"
#include "obs/timing.h"
#include "tensor/tensor.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table.h"

namespace hsconas::eval {

namespace {

using tensor::Tensor;

/// Pool per-signature stats across architectures: identical geometries
/// recur between archs (stem, head, repeated blocks), and the overall
/// correlation should weight them by everything that was measured.
void merge_stats(std::unordered_map<std::string, obs::OpStats>& pooled,
                 const std::vector<obs::OpStats>& add) {
  for (const obs::OpStats& st : add) {
    auto [it, inserted] = pooled.emplace(st.signature, st);
    if (inserted) continue;
    obs::OpStats& dst = it->second;
    dst.calls += st.calls;
    dst.wall_ms_total += st.wall_ms_total;
    dst.wall_ms_min = std::min(dst.wall_ms_min, st.wall_ms_min);
    dst.wall_ms_max = std::max(dst.wall_ms_max, st.wall_ms_max);
    dst.cpu_ms_total += st.cpu_ms_total;
    dst.workspace_peak_bytes =
        std::max(dst.workspace_peak_bytes, st.workspace_peak_bytes);
    for (double s : st.wall_ms_samples) {
      if (dst.wall_ms_samples.size() >= obs::Profiler::kMaxSamples) break;
      dst.wall_ms_samples.push_back(s);
    }
  }
}

util::Json op_row_json(const hwsim::OpComparison& cmp) {
  const obs::OpStats& st = cmp.measured;
  util::Json o = util::Json::object();
  o["signature"] = st.signature;
  o["op"] = st.key.op;
  o["kind"] = st.key.kind;
  o["calls"] = static_cast<unsigned long long>(st.calls);
  o["wall_ms_mean"] = st.wall_ms_mean();
  o["wall_ms_p50"] = st.wall_ms_percentile(0.5);
  o["wall_ms_p95"] = st.wall_ms_percentile(0.95);
  o["wall_ms_total"] = st.wall_ms_total;
  o["cpu_ms_total"] = st.cpu_ms_total;
  o["flops_per_call"] = st.flops_per_call;
  o["bytes_per_call"] = st.bytes_per_call;
  o["arithmetic_intensity"] = st.arithmetic_intensity();
  o["achieved_gflops"] = st.achieved_gflops();
  o["achieved_gbs"] = st.achieved_gbs();
  o["workspace_peak_bytes"] = st.workspace_peak_bytes;
  o["priced"] = cmp.priced;
  if (cmp.priced) {
    o["predicted_ms"] = cmp.predicted_ms;
    o["ratio"] = cmp.ratio;
    o["drift"] = cmp.drift;
    o["bound"] = cmp.compute_bound ? "compute" : "memory";
  }
  return o;
}

util::Json calibration_json(const hwsim::CalibrationReport& report) {
  util::Json c = util::Json::object();
  c["op_kendall_tau"] = report.kendall_tau;
  c["op_spearman_rho"] = report.spearman_rho;
  c["median_ratio"] = report.median_ratio;
  c["measured_total_ms"] = report.measured_total_ms;
  c["predicted_total_ms"] = report.predicted_total_ms;
  c["priced_ops"] = static_cast<unsigned long long>(report.priced_ops);
  c["unpriced_ops"] = static_cast<unsigned long long>(report.unpriced_ops);
  util::Json ops = util::Json::array();
  for (const hwsim::OpComparison& cmp : report.ops) {
    ops.push_back(op_row_json(cmp));
  }
  c["ops"] = std::move(ops);
  return c;
}

}  // namespace

ProfileReport run_profile(const ProfileConfig& config) {
  if (config.num_archs < 1) {
    throw InvalidArgument("profile: need at least one architecture");
  }
  if (config.iters < 1) {
    throw InvalidArgument("profile: need at least one counted iteration");
  }
  if (config.warmup < 0 || config.batch < 1) {
    throw InvalidArgument("profile: bad warmup/batch");
  }
  if (config.fused && config.backward) {
    throw InvalidArgument(
        "profile: --fused is inference-only (backward through a fused "
        "forward is a contract violation)");
  }
  const bool int8 = config.dtype == nn::InferenceDType::kI8;
  if (int8 && config.backward) {
    throw InvalidArgument(
        "profile: --dtype=int8 is inference-only (there is no quantized "
        "backward pass)");
  }
  config.space.validate();

  ProfileReport report;
  report.config = config;
  report.profiler_compiled_in = obs::Profiler::compiled_in();

  // Int8 runs price against the int8 LUT, so the space must carry the
  // quantization axis and the sampled archs the quant gene.
  core::SearchSpaceConfig space_cfg = config.space;
  if (int8) space_cfg.search_quantization = true;
  const core::SearchSpace space(space_cfg);
  const hwsim::DeviceSimulator device(hwsim::device_by_name(config.device));
  core::LatencyModel::Config model_cfg;
  model_cfg.batch = config.batch;
  model_cfg.bias_samples = 20;
  model_cfg.seed = config.seed;
  model_cfg.measurement_noise = false;
  core::LatencyModel model(space, device, model_cfg);

  util::Rng rng(config.seed);
  const bool fusion_was_on = nn::inference_fusion_enabled();
  const nn::InferenceDType dtype_was = nn::inference_dtype();
  nn::set_inference_fusion(config.fused);
  obs::Profiler::disable();

  std::unordered_map<std::string, obs::OpStats> pooled;
  try {
    for (int a = 0; a < config.num_archs; ++a) {
      ArchProfile ap;
      ap.arch = core::Arch::random(space, rng);
      ap.arch.quant = int8 ? 1 : 0;
      ap.arch_string = ap.arch.to_string(space);
      core::Supernet net(space, config.seed + static_cast<std::uint64_t>(a),
                         ap.arch);
      net.set_training(config.backward);

      Tensor images = Tensor::uniform(
          {config.batch, config.space.input_channels, config.space.input_size,
           config.space.input_size},
          -1.0f, 1.0f, rng);
      Tensor logits_grad = Tensor::uniform(
          {config.batch, config.space.num_classes}, -0.1f, 0.1f, rng);

      if (int8) {
        // PTQ against the very batch being profiled: the observers see
        // exactly the activation ranges the timed loop will produce.
        net.calibrate_quant({images});
        nn::set_inference_dtype(nn::InferenceDType::kI8);
      }

      auto run_iteration = [&] {
        Tensor logits = net.forward(images);
        if (config.backward) net.backward(logits_grad);
      };

      // Warm-up excluded: Workspace pools and BN caches settle, profiler
      // stays off so nothing from these iterations enters the aggregates.
      for (int w = 0; w < config.warmup; ++w) run_iteration();

      obs::Profiler::clear();
      obs::Profiler::enable();
      std::vector<double> iter_ms;
      iter_ms.reserve(static_cast<std::size_t>(config.iters));
      for (int i = 0; i < config.iters; ++i) {
        const std::uint64_t t0 = obs::monotonic_ns();
        run_iteration();
        iter_ms.push_back(static_cast<double>(obs::monotonic_ns() - t0) /
                          1e6);
      }
      obs::Profiler::disable();
      const std::vector<obs::OpStats> stats = obs::Profiler::snapshot();
      obs::Profiler::clear();
      merge_stats(pooled, stats);

      double sum = 0.0;
      for (double ms : iter_ms) sum += ms;
      ap.measured_ms = sum / static_cast<double>(iter_ms.size());
      ap.measured_p50_ms = util::percentile(iter_ms, 50.0);
      ap.measured_p95_ms = util::percentile(iter_ms, 95.0);
      ap.predicted_ms = model.predict_ms(ap.arch);
      ap.predicted_uncorrected_ms = model.predict_uncorrected_ms(ap.arch);
      ap.ops = hwsim::compare_profile(stats, device);
      report.archs.push_back(std::move(ap));
    }
  } catch (...) {
    obs::Profiler::disable();
    nn::set_inference_dtype(dtype_was);
    nn::set_inference_fusion(fusion_was_on);
    throw;
  }
  nn::set_inference_dtype(dtype_was);
  nn::set_inference_fusion(fusion_was_on);

  std::vector<obs::OpStats> pooled_vec;
  pooled_vec.reserve(pooled.size());
  for (auto& [sig, st] : pooled) pooled_vec.push_back(std::move(st));
  std::sort(pooled_vec.begin(), pooled_vec.end(),
            [](const obs::OpStats& x, const obs::OpStats& y) {
              if (x.wall_ms_total != y.wall_ms_total) {
                return x.wall_ms_total > y.wall_ms_total;
              }
              return x.signature < y.signature;
            });
  report.overall = hwsim::compare_profile(pooled_vec, device);

  if (report.archs.size() >= 2) {
    std::vector<double> predicted, measured;
    for (const ArchProfile& ap : report.archs) {
      predicted.push_back(ap.predicted_ms);
      measured.push_back(ap.measured_ms);
    }
    report.arch_kendall_tau = util::kendall_tau(predicted, measured);
    report.arch_spearman_rho = util::spearman(predicted, measured);
  }
  return report;
}

util::Json profile_report_json(const ProfileReport& report) {
  util::Json doc = util::Json::object();
  doc["schema"] = "hsconas.profile.v1";
  doc["device"] = report.config.device;
  doc["batch"] = static_cast<double>(report.config.batch);
  doc["iters"] = static_cast<double>(report.config.iters);
  doc["warmup"] = static_cast<double>(report.config.warmup);
  doc["fused"] = report.config.fused;
  doc["backward"] = report.config.backward;
  doc["dtype"] = std::string(nn::inference_dtype_name(report.config.dtype));
  doc["profiler_compiled_in"] = report.profiler_compiled_in;

  util::Json archs = util::Json::array();
  for (const ArchProfile& ap : report.archs) {
    util::Json a = util::Json::object();
    a["arch"] = ap.arch_string;
    a["measured_ms"] = ap.measured_ms;
    a["measured_p50_ms"] = ap.measured_p50_ms;
    a["measured_p95_ms"] = ap.measured_p95_ms;
    a["predicted_ms"] = ap.predicted_ms;
    a["predicted_uncorrected_ms"] = ap.predicted_uncorrected_ms;
    a["calibration"] = calibration_json(ap.ops);
    archs.push_back(std::move(a));
  }
  doc["archs"] = std::move(archs);
  doc["overall"] = calibration_json(report.overall);

  util::Json corr = util::Json::object();
  corr["arch_kendall_tau"] = report.arch_kendall_tau;
  corr["arch_spearman_rho"] = report.arch_spearman_rho;
  corr["op_kendall_tau"] = report.overall.kendall_tau;
  corr["op_spearman_rho"] = report.overall.spearman_rho;
  doc["correlation"] = std::move(corr);

  util::Json worst = util::Json::array();
  for (const hwsim::OpComparison& cmp : report.overall.worst_offenders()) {
    worst.push_back(op_row_json(cmp));
  }
  doc["worst_offenders"] = std::move(worst);
  return doc;
}

std::string render_profile_report(const ProfileReport& report) {
  std::string out;
  out += util::format(
      "profile: device=%s batch=%d iters=%d warmup=%d fused=%d backward=%d "
      "dtype=%s\n",
      report.config.device.c_str(), report.config.batch, report.config.iters,
      report.config.warmup, report.config.fused ? 1 : 0,
      report.config.backward ? 1 : 0,
      nn::inference_dtype_name(report.config.dtype));
  if (!report.profiler_compiled_in) {
    out += "note: profiler compiled out (HSCONAS_ENABLE_TRACING=OFF) — "
           "per-op sections are empty\n";
  }

  util::Table archs({"arch", "measured (ms)", "p50", "p95",
                     "predicted (ms)", "uncorrected", "op τ"});
  for (std::size_t i = 0; i < report.archs.size(); ++i) {
    const ArchProfile& ap = report.archs[i];
    archs.add_row({util::format("#%zu", i),
                   util::format("%.3f", ap.measured_ms),
                   util::format("%.3f", ap.measured_p50_ms),
                   util::format("%.3f", ap.measured_p95_ms),
                   util::format("%.4f", ap.predicted_ms),
                   util::format("%.4f", ap.predicted_uncorrected_ms),
                   util::format("%.3f", ap.ops.kendall_tau)});
  }
  out += "\nper-arch predicted vs measured:\n" + archs.render();

  constexpr std::size_t kTopOps = 12;
  util::Table roofline({"op signature", "calls", "mean (ms)", "GFLOP/s",
                        "GB/s", "AI", "bound", "ws peak (KiB)",
                        "pred (ms)", "ratio"});
  std::size_t shown = 0;
  for (const hwsim::OpComparison& cmp : report.overall.ops) {
    if (shown++ >= kTopOps) break;
    const obs::OpStats& st = cmp.measured;
    roofline.add_row(
        {st.signature,
         util::format("%llu", static_cast<unsigned long long>(st.calls)),
         util::format("%.4f", st.wall_ms_mean()),
         util::format("%.2f", st.achieved_gflops()),
         util::format("%.2f", st.achieved_gbs()),
         util::format("%.2f", st.arithmetic_intensity()),
         cmp.compute_bound ? "compute" : "memory",
         util::format("%.1f", st.workspace_peak_bytes / 1024.0),
         cmp.priced ? util::format("%.4f", cmp.predicted_ms) : "-",
         cmp.priced ? util::format("%.1f", cmp.ratio) : "-"});
  }
  if (!report.overall.ops.empty()) {
    out += util::format("\nroofline, pooled across archs (top %zu of %zu by "
                        "wall time):\n",
                        std::min(kTopOps, report.overall.ops.size()),
                        report.overall.ops.size());
    out += roofline.render();
  }

  const auto offenders = report.overall.worst_offenders();
  if (!offenders.empty()) {
    util::Table worst(
        {"op signature", "measured (ms)", "pred (ms)", "ratio", "drift"});
    for (const hwsim::OpComparison& cmp : offenders) {
      worst.add_row({cmp.measured.signature,
                     util::format("%.4f", cmp.measured.wall_ms_mean()),
                     util::format("%.4f", cmp.predicted_ms),
                     util::format("%.1f", cmp.ratio),
                     util::format("%.3f", cmp.drift)});
    }
    out += "\nworst offenders (deviation from the median host/device "
           "ratio):\n" +
           worst.render();
  }

  out += util::format(
      "\ncorrelation: arch kendall_tau=%.3f spearman_rho=%.3f (n=%zu) | "
      "per-op kendall_tau=%.3f spearman_rho=%.3f (n=%zu priced, %zu "
      "unpriced)\n",
      report.arch_kendall_tau, report.arch_spearman_rho, report.archs.size(),
      report.overall.kendall_tau, report.overall.spearman_rho,
      report.overall.priced_ops, report.overall.unpriced_ops);
  out += util::format(
      "scale: median measured/predicted ratio=%.2f (host kernels vs "
      "simulated device; ordering, not scale, is what the search needs)\n",
      report.overall.median_ratio);
  return out;
}

}  // namespace hsconas::eval
