#pragma once

#include "tensor/tensor.h"
#include "util/rng.h"

namespace hsconas::data {

/// "Standard data augmentations" (§IV-A) adapted to the synthetic task:
/// random horizontal flip, random shift-crop with zero padding, and
/// brightness jitter. Applied per-sample on (C, H, W) tensors.
struct AugmentConfig {
  bool horizontal_flip = true;
  int max_shift = 2;            ///< random crop via +/- shift, 0 disables
  double brightness_jitter = 0.1;  ///< multiplicative, 0 disables
};

/// Augment a single image in place.
void augment_image(tensor::Tensor& img, const AugmentConfig& config,
                   util::Rng& rng);

/// Augment every sample of an (N, C, H, W) batch in place.
void augment_batch(tensor::Tensor& batch, const AugmentConfig& config,
                   util::Rng& rng);

}  // namespace hsconas::data
