#include "data/augment.h"

#include <algorithm>
#include <cstring>

#include "util/error.h"

namespace hsconas::data {

using tensor::Tensor;

namespace {

void flip_horizontal(float* chan, long h, long w) {
  for (long y = 0; y < h; ++y) {
    float* row = chan + y * w;
    std::reverse(row, row + w);
  }
}

void shift_channel(float* chan, long h, long w, long dy, long dx) {
  std::vector<float> tmp(static_cast<std::size_t>(h * w), 0.0f);
  for (long y = 0; y < h; ++y) {
    const long sy = y - dy;
    if (sy < 0 || sy >= h) continue;
    for (long x = 0; x < w; ++x) {
      const long sx = x - dx;
      if (sx < 0 || sx >= w) continue;
      tmp[static_cast<std::size_t>(y * w + x)] = chan[sy * w + sx];
    }
  }
  std::memcpy(chan, tmp.data(), tmp.size() * sizeof(float));
}

}  // namespace

void augment_image(Tensor& img, const AugmentConfig& config, util::Rng& rng) {
  if (img.ndim() != 3) {
    throw InvalidArgument("augment_image: expected (C, H, W)");
  }
  const long c = img.dim(0), h = img.dim(1), w = img.dim(2);

  const bool do_flip = config.horizontal_flip && rng.bernoulli(0.5);
  long dy = 0, dx = 0;
  if (config.max_shift > 0) {
    dy = rng.randint(-config.max_shift, config.max_shift);
    dx = rng.randint(-config.max_shift, config.max_shift);
  }
  float gain = 1.0f;
  if (config.brightness_jitter > 0.0) {
    gain = static_cast<float>(
        1.0 + rng.uniform(-config.brightness_jitter,
                          config.brightness_jitter));
  }

  for (long ch = 0; ch < c; ++ch) {
    float* chan = img.data() + ch * h * w;
    if (do_flip) flip_horizontal(chan, h, w);
    if (dy != 0 || dx != 0) shift_channel(chan, h, w, dy, dx);
    if (gain != 1.0f) {
      for (long i = 0; i < h * w; ++i) chan[i] *= gain;
    }
  }
}

void augment_batch(Tensor& batch, const AugmentConfig& config,
                   util::Rng& rng) {
  if (batch.ndim() != 4) {
    throw InvalidArgument("augment_batch: expected (N, C, H, W)");
  }
  const long n = batch.dim(0), c = batch.dim(1), h = batch.dim(2),
             w = batch.dim(3);
  for (long s = 0; s < n; ++s) {
    Tensor view({c, h, w});
    std::memcpy(view.data(), batch.data() + s * c * h * w,
                static_cast<std::size_t>(c * h * w) * sizeof(float));
    augment_image(view, config, rng);
    std::memcpy(batch.data() + s * c * h * w, view.data(),
                static_cast<std::size_t>(c * h * w) * sizeof(float));
  }
}

}  // namespace hsconas::data
