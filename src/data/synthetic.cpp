#include "data/synthetic.h"

#include <cmath>
#include <numbers>

#include "util/error.h"

namespace hsconas::data {

using tensor::Tensor;

SyntheticDataset::SyntheticDataset(const SyntheticConfig& config)
    : config_(config) {
  if (config.num_classes < 2 || config.image_size < 4 ||
      config.channels < 1 || config.train_size < 1 || config.val_size < 1) {
    throw InvalidArgument("SyntheticDataset: degenerate configuration");
  }

  util::Rng proto_rng(config.seed);
  prototypes_.resize(static_cast<std::size_t>(config.num_classes));
  for (auto& p : prototypes_) {
    for (int g = 0; g < 3; ++g) {
      p.orient[g] = proto_rng.uniform(0.0, std::numbers::pi);
      p.freq[g] = proto_rng.uniform(1.0, 5.0);
      p.phase[g] = proto_rng.uniform(0.0, 2.0 * std::numbers::pi);
      p.weight[g] = proto_rng.uniform(0.3, 1.0);
    }
    for (int b = 0; b < 2; ++b) {
      p.bx[b] = proto_rng.uniform(0.2, 0.8);
      p.by[b] = proto_rng.uniform(0.2, 0.8);
      p.br[b] = proto_rng.uniform(0.1, 0.3);
      p.ba[b] = proto_rng.uniform(-1.0, 1.0);
    }
    for (int c = 0; c < 3; ++c) p.gain[c] = proto_rng.uniform(0.6, 1.4);
  }

  const auto img_elems = static_cast<std::size_t>(
      config.channels * config.image_size * config.image_size);

  util::Rng train_rng(config.seed ^ 0x7261696eull);  // "rain"
  train_store_.reserve(img_elems * static_cast<std::size_t>(config.train_size));
  train_labels_.reserve(static_cast<std::size_t>(config.train_size));
  for (int i = 0; i < config.train_size; ++i) {
    const int label = static_cast<int>(i % config.num_classes);
    Tensor img = render(prototypes_[static_cast<std::size_t>(label)], train_rng);
    train_store_.insert(train_store_.end(), img.flat().begin(),
                        img.flat().end());
    train_labels_.push_back(label);
  }

  util::Rng val_rng(config.seed ^ 0x76616cull);  // "val"
  val_store_.reserve(img_elems * static_cast<std::size_t>(config.val_size));
  val_labels_.reserve(static_cast<std::size_t>(config.val_size));
  for (int i = 0; i < config.val_size; ++i) {
    const int label = static_cast<int>(i % config.num_classes);
    Tensor img = render(prototypes_[static_cast<std::size_t>(label)], val_rng);
    val_store_.insert(val_store_.end(), img.flat().begin(), img.flat().end());
    val_labels_.push_back(label);
  }
}

Tensor SyntheticDataset::render(const ClassPrototype& proto,
                                util::Rng& rng) const {
  const long s = config_.image_size;
  const long ch = config_.channels;
  Tensor img({ch, s, s});
  const double jit = config_.param_jitter;

  // Jittered copy of the prototype for this sample.
  ClassPrototype p = proto;
  for (int g = 0; g < 3; ++g) {
    p.orient[g] += rng.normal(0.0, jit * 0.4);
    p.freq[g] *= 1.0 + rng.normal(0.0, jit * 0.3);
    p.phase[g] += rng.normal(0.0, jit * 1.5);
  }
  for (int b = 0; b < 2; ++b) {
    p.bx[b] += rng.normal(0.0, jit * 0.1);
    p.by[b] += rng.normal(0.0, jit * 0.1);
  }

  for (long y = 0; y < s; ++y) {
    for (long x = 0; x < s; ++x) {
      const double u = static_cast<double>(x) / static_cast<double>(s - 1);
      const double v = static_cast<double>(y) / static_cast<double>(s - 1);
      double value = 0.0;
      for (int g = 0; g < 3; ++g) {
        const double proj =
            u * std::cos(p.orient[g]) + v * std::sin(p.orient[g]);
        value += p.weight[g] *
                 std::sin(2.0 * std::numbers::pi * p.freq[g] * proj +
                          p.phase[g]);
      }
      for (int b = 0; b < 2; ++b) {
        const double dx = u - p.bx[b], dy = v - p.by[b];
        value += p.ba[b] *
                 std::exp(-(dx * dx + dy * dy) / (2.0 * p.br[b] * p.br[b]));
      }
      for (long c = 0; c < ch; ++c) {
        const double gain = p.gain[c % 3];
        const double noisy =
            gain * value + rng.normal(0.0, config_.pixel_noise);
        img.at(c, y, x) = static_cast<float>(std::tanh(noisy));
      }
    }
  }
  return img;
}

Tensor SyntheticDataset::image_at(const std::vector<float>& store,
                                  std::size_t i) const {
  const auto img_elems = static_cast<std::size_t>(
      config_.channels * config_.image_size * config_.image_size);
  HSCONAS_CHECK_MSG((i + 1) * img_elems <= store.size(),
                    "SyntheticDataset: index out of range");
  Tensor img({config_.channels, config_.image_size, config_.image_size});
  std::copy(store.begin() + static_cast<long>(i * img_elems),
            store.begin() + static_cast<long>((i + 1) * img_elems),
            img.data());
  return img;
}

Tensor SyntheticDataset::train_image(std::size_t i) const {
  return image_at(train_store_, i);
}
Tensor SyntheticDataset::val_image(std::size_t i) const {
  return image_at(val_store_, i);
}

namespace {
Tensor stack(const std::vector<std::size_t>& indices,
             const SyntheticConfig& cfg, const std::vector<float>& store) {
  const auto img_elems = static_cast<std::size_t>(
      cfg.channels * cfg.image_size * cfg.image_size);
  Tensor batch({static_cast<long>(indices.size()), cfg.channels,
                cfg.image_size, cfg.image_size});
  for (std::size_t n = 0; n < indices.size(); ++n) {
    HSCONAS_CHECK_MSG((indices[n] + 1) * img_elems <= store.size(),
                      "stack: index out of range");
    std::copy(store.begin() + static_cast<long>(indices[n] * img_elems),
              store.begin() + static_cast<long>((indices[n] + 1) * img_elems),
              batch.data() + static_cast<long>(n * img_elems));
  }
  return batch;
}
}  // namespace

Tensor SyntheticDataset::stack_train(
    const std::vector<std::size_t>& indices) const {
  return stack(indices, config_, train_store_);
}
Tensor SyntheticDataset::stack_val(
    const std::vector<std::size_t>& indices) const {
  return stack(indices, config_, val_store_);
}

std::vector<int> SyntheticDataset::labels_train(
    const std::vector<std::size_t>& indices) const {
  std::vector<int> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(train_labels_.at(i));
  return out;
}
std::vector<int> SyntheticDataset::labels_val(
    const std::vector<std::size_t>& indices) const {
  std::vector<int> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(val_labels_.at(i));
  return out;
}

}  // namespace hsconas::data
