#include "data/loader.h"

#include <algorithm>

#include "util/error.h"

namespace hsconas::data {

DataLoader::DataLoader(const SyntheticDataset& dataset,
                       std::size_t batch_size, bool train, std::uint64_t seed,
                       AugmentConfig augment)
    : dataset_(dataset),
      batch_size_(batch_size),
      train_(train),
      augment_(augment),
      rng_(seed) {
  if (batch_size == 0) throw InvalidArgument("DataLoader: batch_size == 0");
  const std::size_t n = train_ ? dataset_.train_size() : dataset_.val_size();
  order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) order_[i] = i;
  start_epoch();
}

std::size_t DataLoader::num_batches() const {
  return (order_.size() + batch_size_ - 1) / batch_size_;
}

void DataLoader::start_epoch() {
  if (train_) rng_.shuffle(order_);
}

void DataLoader::export_state(util::ByteWriter& out) const {
  out.rng_state(rng_.state());
  std::vector<std::uint64_t> order(order_.begin(), order_.end());
  out.vec_u64(order);
}

void DataLoader::import_state(util::ByteReader& in) {
  rng_.set_state(in.rng_state());
  const std::vector<std::uint64_t> order = in.vec_u64(order_.size());
  if (order.size() != order_.size()) {
    throw Error("DataLoader: checkpointed order has " +
                std::to_string(order.size()) + " samples, dataset has " +
                std::to_string(order_.size()));
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] >= order_.size()) {
      throw Error("DataLoader: checkpointed sample index out of range");
    }
    order_[i] = static_cast<std::size_t>(order[i]);
  }
}

Batch DataLoader::batch(std::size_t b) {
  HSCONAS_CHECK_MSG(b < num_batches(), "DataLoader: batch index out of range");
  const std::size_t begin = b * batch_size_;
  const std::size_t end = std::min(begin + batch_size_, order_.size());
  const std::vector<std::size_t> indices(order_.begin() + static_cast<long>(begin),
                                         order_.begin() + static_cast<long>(end));
  Batch out;
  if (train_) {
    out.images = dataset_.stack_train(indices);
    out.labels = dataset_.labels_train(indices);
    augment_batch(out.images, augment_, rng_);
  } else {
    out.images = dataset_.stack_val(indices);
    out.labels = dataset_.labels_val(indices);
  }
  return out;
}

}  // namespace hsconas::data
