#pragma once

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace hsconas::data {

/// Configuration for the synthetic classification task that stands in for
/// ImageNet (see DESIGN.md, substitution table).
///
/// Each class is a deterministic "prototype": a mixture of oriented
/// sinusoidal gratings plus Gaussian blobs with a class-specific color
/// balance. Samples render the prototype with jittered parameters and pixel
/// noise, so (a) classes are separable, (b) separability improves with
/// model capacity, and (c) the task is not solvable by trivial color
/// histograms alone — the properties the NAS search decisions depend on.
struct SyntheticConfig {
  int num_classes = 10;
  int train_size = 512;
  int val_size = 256;
  int image_size = 16;   ///< square images
  int channels = 3;
  double param_jitter = 0.25;  ///< relative jitter of prototype parameters
  double pixel_noise = 0.15;   ///< additive Gaussian pixel noise stddev
  std::uint64_t seed = 42;
};

/// In-memory dataset: all images generated eagerly at construction
/// (the default config is ~0.5 MB).
class SyntheticDataset {
 public:
  explicit SyntheticDataset(const SyntheticConfig& config);

  const SyntheticConfig& config() const { return config_; }

  std::size_t train_size() const { return train_labels_.size(); }
  std::size_t val_size() const { return val_labels_.size(); }

  /// Image i as a (C, H, W) tensor view copy.
  tensor::Tensor train_image(std::size_t i) const;
  tensor::Tensor val_image(std::size_t i) const;
  int train_label(std::size_t i) const { return train_labels_.at(i); }
  int val_label(std::size_t i) const { return val_labels_.at(i); }

  /// Batched access: stack the given indices into an (N, C, H, W) tensor.
  tensor::Tensor stack_train(const std::vector<std::size_t>& indices) const;
  tensor::Tensor stack_val(const std::vector<std::size_t>& indices) const;
  std::vector<int> labels_train(const std::vector<std::size_t>& indices) const;
  std::vector<int> labels_val(const std::vector<std::size_t>& indices) const;

 private:
  struct ClassPrototype {
    // Three gratings: orientation (rad), spatial frequency, phase, weight.
    double orient[3], freq[3], phase[3], weight[3];
    // Two blobs: center (fraction of image), radius, amplitude.
    double bx[2], by[2], br[2], ba[2];
    // Per-channel gain.
    double gain[3];
  };

  tensor::Tensor render(const ClassPrototype& proto, util::Rng& rng) const;
  tensor::Tensor image_at(const std::vector<float>& store,
                          std::size_t i) const;

  SyntheticConfig config_;
  std::vector<ClassPrototype> prototypes_;
  std::vector<float> train_store_, val_store_;  // packed CHW images
  std::vector<int> train_labels_, val_labels_;
};

}  // namespace hsconas::data
