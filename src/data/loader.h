#pragma once

#include <vector>

#include "data/augment.h"
#include "data/synthetic.h"
#include "util/serial.h"

namespace hsconas::data {

/// A mini-batch: stacked images + integer labels.
struct Batch {
  tensor::Tensor images;  ///< (N, C, H, W)
  std::vector<int> labels;
};

/// Epoch-based mini-batch iterator over a SyntheticDataset split.
/// Training mode shuffles each epoch and applies augmentation; validation
/// mode iterates in order with no augmentation. The final partial batch of
/// an epoch is kept (not dropped) so small datasets use every sample.
class DataLoader {
 public:
  DataLoader(const SyntheticDataset& dataset, std::size_t batch_size,
             bool train, std::uint64_t seed,
             AugmentConfig augment = AugmentConfig{});

  /// Batches per epoch.
  std::size_t num_batches() const;

  /// Re-shuffle (training) and rewind to the first batch.
  void start_epoch();

  /// Fetch batch `b` of the current epoch (b < num_batches()).
  Batch batch(std::size_t b);

  /// Checkpoint/resume at epoch boundaries: the shuffle/augmentation RNG
  /// *and* the current sample order. Both are needed — start_epoch()
  /// shuffles order_ in place, so the permutation depends on the entire
  /// shuffle history, not just the RNG position. Restoring both makes the
  /// next start_epoch() reproduce the exact order and augmentation stream
  /// the uninterrupted run would see.
  void export_state(util::ByteWriter& out) const;
  void import_state(util::ByteReader& in);

 private:
  const SyntheticDataset& dataset_;
  std::size_t batch_size_;
  bool train_;
  AugmentConfig augment_;
  util::Rng rng_;
  std::vector<std::size_t> order_;
};

}  // namespace hsconas::data
