// bench_compare — diff two kernel benchmark dumps and fail on regressions.
//
//   bench_compare <old.json> <new.json> [--tolerance=0.10]
//
// Both inputs may be either a raw `bench_kernels --json` dump
// ({"results": [{"op", "shape", "ns_per_iter", ...}, ...]}) or the checked-in
// BENCH_kernels.json ledger (whose freshest column is "current"). Rows are
// matched by (op, shape, dtype) — a missing "dtype" field means "f32", so
// ledgers from before the int8 path compare cleanly. For each match the
// relative change in ns_per_iter is printed, and any slowdown beyond the
// tolerance (default +10%) makes the exit code nonzero so
// tools/ci_checks.sh can gate on it. Rows present on only one side are
// reported but never fail the run — benches come and go.

#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <map>
#include <string>
#include <utility>

#include "util/error.h"
#include "util/json.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using hsconas::util::Json;

/// Row identity: (op, shape, dtype). dtype defaults to "f32" when the row
/// predates the quantized-kernel column.
using BenchKey = std::array<std::string, 3>;

std::string key_name(const BenchKey& key) {
  std::string name = key[1].empty() ? key[0] : key[0] + "/" + key[1];
  if (key[2] != "f32") name += " [" + key[2] + "]";
  return name;
}

/// (op, shape, dtype) -> ns_per_iter for whichever result array the file
/// carries.
std::map<BenchKey, double> load_results(const std::string& path) {
  const Json doc = Json::load(path);
  const Json* rows = doc.find("results");
  if (rows == nullptr) rows = doc.find("current");
  if (rows == nullptr || !rows->is_array()) {
    throw hsconas::Error(hsconas::util::format(
        "bench_compare: '%s' has neither a \"results\" nor a \"current\" "
        "benchmark array",
        path.c_str()));
  }
  std::map<BenchKey, double> out;
  for (const Json& row : rows->items()) {
    const Json* op = row.find("op");
    const Json* ns = row.find("ns_per_iter");
    if (op == nullptr || !op->is_string() || ns == nullptr ||
        !ns->is_number()) {
      continue;
    }
    std::string shape;
    if (const Json* s = row.find("shape"); s != nullptr && s->is_string()) {
      shape = s->as_string();
    }
    std::string dtype = "f32";
    if (const Json* d = row.find("dtype"); d != nullptr && d->is_string()) {
      dtype = d->as_string();
    }
    out[{op->as_string(), shape, dtype}] = ns->as_double();
  }
  if (out.empty()) {
    throw hsconas::Error(hsconas::util::format(
        "bench_compare: '%s' contains no usable benchmark rows", path.c_str()));
  }
  return out;
}

int usage() {
  std::fputs(
      "usage: bench_compare <old.json> <new.json> [--tolerance=0.10]\n"
      "exits 1 when any shared benchmark slowed down by more than the\n"
      "tolerance (fraction of old ns_per_iter)\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string old_path, new_path;
  double tolerance = 0.10;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      return usage();
    }
    if (std::strncmp(arg, "--tolerance=", 12) == 0) {
      try {
        tolerance = std::stod(arg + 12);
      } catch (const std::exception&) {
        std::fprintf(stderr, "error: bad --tolerance value '%s'\n", arg + 12);
        return 2;
      }
      if (!(tolerance >= 0.0)) {
        std::fprintf(stderr, "error: --tolerance must be >= 0\n");
        return 2;
      }
    } else if (old_path.empty()) {
      old_path = arg;
    } else if (new_path.empty()) {
      new_path = arg;
    } else {
      return usage();
    }
  }
  if (old_path.empty() || new_path.empty()) return usage();

  try {
    const auto old_results = load_results(old_path);
    const auto new_results = load_results(new_path);

    hsconas::util::Table table(
        {"benchmark", "old (ns)", "new (ns)", "change", "verdict"});
    int regressions = 0;
    std::size_t shared = 0;
    std::size_t incomparable = 0;
    for (const auto& [key, old_ns] : old_results) {
      const auto it = new_results.find(key);
      const std::string name = key_name(key);
      if (it == new_results.end()) {
        table.add_row({name, hsconas::util::format("%.0f", old_ns), "-", "-",
                       "removed"});
        continue;
      }
      const double new_ns = it->second;
      // A zero or negative baseline has no meaningful relative change —
      // dividing by it would emit inf/NaN or silently pass a real
      // regression. Same for a nonpositive new reading (ns_per_iter is a
      // duration). Report such rows as incomparable and leave them out of
      // the shared count and the verdict.
      if (!(old_ns > 0.0) || !(new_ns > 0.0)) {
        ++incomparable;
        std::fprintf(stderr,
                     "warning: %s has nonpositive ns_per_iter "
                     "(old=%g, new=%g); skipping comparison\n",
                     name.c_str(), old_ns, new_ns);
        table.add_row({name, hsconas::util::format("%.0f", old_ns),
                       hsconas::util::format("%.0f", new_ns), "-",
                       "incomparable"});
        continue;
      }
      ++shared;
      const double change = (new_ns - old_ns) / old_ns;
      const bool regressed = change > tolerance;
      if (regressed) ++regressions;
      table.add_row({name, hsconas::util::format("%.0f", old_ns),
                     hsconas::util::format("%.0f", new_ns),
                     hsconas::util::format("%+.1f%%", change * 100.0),
                     regressed ? "REGRESSED"
                               : (change < -tolerance ? "improved" : "ok")});
    }
    for (const auto& [key, new_ns] : new_results) {
      if (old_results.count(key) != 0) continue;
      table.add_row({key_name(key), "-",
                     hsconas::util::format("%.0f", new_ns), "-", "new"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("%zu shared benchmarks, tolerance +%.0f%%: %d regression%s",
                shared, tolerance * 100.0, regressions,
                regressions == 1 ? "" : "s");
    if (incomparable > 0) {
      std::printf(" (%zu incomparable)", incomparable);
    }
    std::printf("\n");
    if (shared == 0) {
      std::fprintf(stderr,
                   "error: no shared benchmarks between '%s' and '%s'\n",
                   old_path.c_str(), new_path.c_str());
      return 1;
    }
    return regressions > 0 ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
