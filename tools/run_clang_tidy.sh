#!/usr/bin/env sh
# Run clang-tidy over the library and tool sources using the compilation
# database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS is always ON).
#
#   tools/run_clang_tidy.sh [-j N] [build-dir] [clang-tidy-binary]
#
# -j N fans the files out over N parallel clang-tidy processes (default:
# nproc). Exits nonzero if clang-tidy reports an error-severity
# diagnostic (see WarningsAsErrors in .clang-tidy). Skips cleanly when
# clang-tidy is not installed so the `lint` target still works on minimal
# toolchains.
set -eu

jobs="$(nproc 2>/dev/null || echo 2)"
case "${1:-}" in
  -j) jobs="$2"; shift 2 ;;
  -j*) jobs="${1#-j}"; shift ;;
esac

build_dir="${1:-build}"
tidy="${2:-clang-tidy}"
root="$(cd "$(dirname "$0")/.." && pwd)"

if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "run_clang_tidy: $tidy not found; skipping (install clang-tidy to enable)" >&2
  exit 0
fi
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing; configure first" >&2
  exit 2
fi

# Library + tools only: tests and benches follow gtest/benchmark idioms
# that trip style checks without telling us anything about the library.
# xargs -P fans out one clang-tidy process per batch; -n bounds the batch
# size so all $jobs slots actually fill.
find "$root/src" "$root/tools" -name '*.cpp' \
  ! -path '*/fixtures/*' -print | sort | \
  xargs -P "$jobs" -n 8 "$tidy" -p "$build_dir" --quiet
