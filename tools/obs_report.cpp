// obs_report — render a saved metrics JSON file (produced by
// `hsconas --metrics-out=...` or `bench_kernels --json`) as tables.
//
//   obs_report metrics.json
//
// Reads the file, inverts obs::metrics_to_json, and prints the counters,
// gauges and histogram summaries via util::Table.

#include <cstdio>
#include <string>

#include "obs/export.h"
#include "util/error.h"
#include "util/json.h"

int main(int argc, char** argv) {
  if (argc != 2 || std::string(argv[1]) == "--help" ||
      std::string(argv[1]) == "-h") {
    std::fputs("usage: obs_report <metrics.json>\n", stderr);
    return 2;
  }
  try {
    const hsconas::util::Json doc = hsconas::util::Json::load(argv[1]);
    // bench_kernels embeds the snapshot under a "metrics" key; accept both
    // a bare snapshot and such a wrapper.
    const hsconas::util::Json* snap_json = doc.find("counters") != nullptr
                                               ? &doc
                                               : doc.find("metrics");
    if (snap_json == nullptr) {
      throw hsconas::Error(
          "obs_report: no metrics snapshot found (expected a \"counters\" "
          "or \"metrics\" key)");
    }
    const hsconas::obs::MetricsSnapshot snap =
        hsconas::obs::metrics_from_json(*snap_json);
    std::fputs(hsconas::obs::render_metrics_report(snap).c_str(), stdout);
    return 0;
  } catch (const hsconas::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
