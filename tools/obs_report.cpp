// obs_report — render saved observability JSON as human-readable tables.
//
//   obs_report <file.json>
//
// Accepts three document shapes and auto-detects which one it was given:
//   * a metrics snapshot (`hsconas --metrics-out=...`, or the snapshot
//     embedded under bench_kernels' "metrics" key) — counters, gauges and
//     histogram summaries with p50/p95/p99;
//   * a per-op profile report (`hsconas profile --out=...`, schema
//     "hsconas.profile.v1") — per-arch predicted-vs-measured, pooled
//     roofline, worst offenders and correlation summary;
//   * a Perfetto trace (`--trace-out=...`) — event/drop counts only, with
//     a pointer at ui.perfetto.dev for the real rendering.
//
// Broken inputs fail gracefully: a missing, empty or truncated file gets a
// one-line diagnosis on stderr and exit code 1, never a raw parser abort.

#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "util/error.h"
#include "util/json.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using hsconas::util::Json;

double num(const Json& obj, const char* key, double fallback = 0.0) {
  const Json* f = obj.find(key);
  return f != nullptr && f->is_number() ? f->as_double() : fallback;
}

std::string str(const Json& obj, const char* key,
                const std::string& fallback = "") {
  const Json* f = obj.find(key);
  return f != nullptr && f->is_string() ? f->as_string() : fallback;
}

/// Re-render a "hsconas.profile.v1" document from its JSON alone (the
/// in-process renderer lives in eval/, but obs_report must not drag the
/// whole model stack in just to pretty-print a saved file).
int render_profile(const Json& doc) {
  std::printf("profile report: device=%s batch=%g iters=%g warmup=%g\n",
              str(doc, "device", "?").c_str(), num(doc, "batch"),
              num(doc, "iters"), num(doc, "warmup"));

  if (const Json* archs = doc.find("archs"); archs != nullptr &&
                                             archs->is_array()) {
    hsconas::util::Table table({"arch", "measured (ms)", "p50", "p95",
                                "predicted (ms)", "op τ"});
    std::size_t i = 0;
    for (const Json& a : archs->items()) {
      double tau = 0.0;
      if (const Json* cal = a.find("calibration")) {
        tau = num(*cal, "op_kendall_tau");
      }
      table.add_row({hsconas::util::format("#%zu", i++),
                     hsconas::util::format("%.3f", num(a, "measured_ms")),
                     hsconas::util::format("%.3f", num(a, "measured_p50_ms")),
                     hsconas::util::format("%.3f", num(a, "measured_p95_ms")),
                     hsconas::util::format("%.4f", num(a, "predicted_ms")),
                     hsconas::util::format("%.3f", tau)});
    }
    std::printf("\nper-arch predicted vs measured:\n%s",
                table.render().c_str());
  }

  if (const Json* overall = doc.find("overall")) {
    if (const Json* ops = overall->find("ops"); ops != nullptr &&
                                                ops->is_array()) {
      constexpr std::size_t kTopOps = 12;
      hsconas::util::Table table({"op signature", "calls", "mean (ms)",
                                  "GFLOP/s", "GB/s", "AI", "bound",
                                  "pred (ms)"});
      std::size_t shown = 0;
      for (const Json& op : ops->items()) {
        if (shown++ >= kTopOps) break;
        table.add_row(
            {str(op, "signature", "?"),
             hsconas::util::format("%g", num(op, "calls")),
             hsconas::util::format("%.4f", num(op, "wall_ms_mean")),
             hsconas::util::format("%.2f", num(op, "achieved_gflops")),
             hsconas::util::format("%.2f", num(op, "achieved_gbs")),
             hsconas::util::format("%.2f", num(op, "arithmetic_intensity")),
             str(op, "bound", "-"),
             hsconas::util::format("%.4f", num(op, "predicted_ms"))});
      }
      std::printf("\nroofline, pooled across archs (top %zu of %zu):\n%s",
                  shown < kTopOps ? shown : kTopOps, ops->items().size(),
                  table.render().c_str());
    }
  }

  if (const Json* worst = doc.find("worst_offenders");
      worst != nullptr && worst->is_array() && !worst->items().empty()) {
    hsconas::util::Table table(
        {"op signature", "measured (ms)", "pred (ms)", "ratio", "drift"});
    for (const Json& op : worst->items()) {
      table.add_row({str(op, "signature", "?"),
                     hsconas::util::format("%.4f", num(op, "wall_ms_mean")),
                     hsconas::util::format("%.4f", num(op, "predicted_ms")),
                     hsconas::util::format("%.1f", num(op, "ratio")),
                     hsconas::util::format("%.3f", num(op, "drift"))});
    }
    std::printf("\nworst offenders:\n%s", table.render().c_str());
  }

  if (const Json* corr = doc.find("correlation")) {
    std::printf(
        "\ncorrelation: arch kendall_tau=%.3f spearman_rho=%.3f | "
        "per-op kendall_tau=%.3f spearman_rho=%.3f\n",
        num(*corr, "arch_kendall_tau"), num(*corr, "arch_spearman_rho"),
        num(*corr, "op_kendall_tau"), num(*corr, "op_spearman_rho"));
  }
  return 0;
}

int render_trace(const Json& doc) {
  const Json* events = doc.find("traceEvents");
  const std::size_t n =
      events != nullptr && events->is_array() ? events->items().size() : 0;
  std::printf("trace file: %zu events, %g dropped (ring overflow)\n", n,
              num(doc, "droppedEvents"));
  std::printf("load it at https://ui.perfetto.dev or chrome://tracing\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::string(argv[1]) == "--help" ||
      std::string(argv[1]) == "-h") {
    std::fputs("usage: obs_report <metrics.json | profile.json | trace.json>\n",
               stderr);
    return 2;
  }
  const std::string path = argv[1];
  try {
    // Read and diagnose the file by hand so a missing, empty or truncated
    // artifact (a run that crashed mid-write, say) produces a message that
    // names the problem instead of a bare parser error.
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open '%s' (missing file?)\n",
                   path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.find_first_not_of(" \t\r\n") == std::string::npos) {
      std::fprintf(stderr,
                   "error: '%s' is empty — did the producing run exit "
                   "before writing its report?\n",
                   path.c_str());
      return 1;
    }

    Json doc;
    try {
      doc = Json::parse(text);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "error: '%s' is truncated or not valid JSON (%s)\n",
                   path.c_str(), e.what());
      return 1;
    }

    if (str(doc, "schema") == "hsconas.profile.v1" ||
        doc.find("archs") != nullptr) {
      return render_profile(doc);
    }
    if (doc.find("traceEvents") != nullptr) return render_trace(doc);

    // bench_kernels embeds the snapshot under a "metrics" key; accept both
    // a bare snapshot and such a wrapper.
    const Json* snap_json =
        doc.find("counters") != nullptr ? &doc : doc.find("metrics");
    if (snap_json == nullptr) {
      std::fprintf(stderr,
                   "error: '%s' has no metrics snapshot, profile report or "
                   "trace (expected \"counters\", \"metrics\", \"archs\" or "
                   "\"traceEvents\")\n",
                   path.c_str());
      return 1;
    }
    const hsconas::obs::MetricsSnapshot snap =
        hsconas::obs::metrics_from_json(*snap_json);
    std::fputs(hsconas::obs::render_metrics_report(snap).c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
