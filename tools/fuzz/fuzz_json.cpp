// Fuzz target: util::Json::parse — the parser behind every manifest,
// latency table, bench dump and obs snapshot the project reads back.
//
// Invariants: malformed input throws hsconas::Error (never crashes or
// leaks another exception type); accepted input reaches the emit/parse
// fixpoint — dump() output re-parses to a value that dumps identically
// (the documented "every dump() output parses back" contract).

#include <cstdlib>
#include <string>

#include "fuzz/fuzz_common.h"
#include "util/error.h"
#include "util/json.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(data, data + size);
  try {
    const hsconas::util::Json parsed = hsconas::util::Json::parse(text);
    const std::string dumped = parsed.dump();
    const hsconas::util::Json again = hsconas::util::Json::parse(dumped);
    if (again.dump() != dumped) std::abort();
  } catch (const hsconas::Error&) {
    // Rejection with Error is the contract for malformed input.
  }
  return 0;
}
