#pragma once

// Shared scaffolding for the fuzz harnesses (docs/STATIC_ANALYSIS.md,
// "Fuzzing"). Every harness defines the libFuzzer entry point
// `LLVMFuzzerTestOneInput` and is built twice:
//
//  - `fuzz_<target>_replay` — always built: this header supplies a
//    standalone main() (HSCONAS_FUZZ_STANDALONE) that replays the files
//    or directories named on the command line through the harness once
//    each. The `ctest -L fuzz` suite runs the checked-in corpora under
//    tests/fuzz/corpus/ through these, so the harnesses stay compiled
//    and the corpora stay green on every toolchain — no libFuzzer
//    needed.
//  - `fuzz_<target>` — only when -DHSCONAS_FUZZ=ON and the compiler
//    supports -fsanitize=fuzzer (clang): the coverage-guided binary for
//    actual exploration.
//
// Harness contract: feed the input to one parser entry point; malformed
// input must be rejected with hsconas::Error (caught and ignored), and
// on accepted input cheap invariants (round-trips) are asserted with
// std::abort() so both libFuzzer and the replay driver flag them.

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#if defined(HSCONAS_FUZZ_STANDALONE)

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path p(argv[i]);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::directory_iterator(p)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (fs::is_regular_file(p, ec)) {
      inputs.push_back(p);
    } else {
      std::fprintf(stderr, "fuzz-replay: no such input: %s\n",
                   p.string().c_str());
      return 2;
    }
  }
  std::sort(inputs.begin(), inputs.end());
  for (const auto& p : inputs) {
    std::ifstream f(p, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "fuzz-replay: cannot read %s\n",
                   p.string().c_str());
      return 2;
    }
    const std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(f),
                                          std::istreambuf_iterator<char>()};
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("fuzz-replay: %zu input(s) replayed clean\n", inputs.size());
  return 0;
}

#endif  // HSCONAS_FUZZ_STANDALONE
