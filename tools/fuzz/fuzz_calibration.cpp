// Fuzz target: nn::import_calibration — the int8 calibration-table
// reader (activation quantizers + per-channel weight scales) that runs
// against a live model during checkpoint restore.
//
// The harness keeps one small two-conv model and feeds it arbitrary
// payloads through util::ByteReader. Malformed or model-mismatched
// tables must throw hsconas::Error (bounds-checked reads, layer/channel
// validation); a partially-applied import is acceptable state here —
// CheckpointReader's CRC layer rejects torn payloads before this parser
// ever sees them in production, and the fuzzer deliberately bypasses it.

#include <memory>
#include <string>

#include "fuzz/fuzz_common.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/module.h"
#include "nn/quantize.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/serial.h"

namespace {

hsconas::nn::Sequential& model() {
  static std::unique_ptr<hsconas::nn::Sequential> net = [] {
    hsconas::util::Rng rng(20210208);
    auto seq = std::make_unique<hsconas::nn::Sequential>("fuzz_net");
    seq->add(std::make_unique<hsconas::nn::Conv2d>(4, 8, 3, 1, 1, 1, true,
                                                   rng));
    seq->add(std::make_unique<hsconas::nn::ReLU>());
    seq->add(std::make_unique<hsconas::nn::Conv2d>(8, 8, 3, 1, 1, 8, false,
                                                   rng));
    seq->set_training(false);
    return seq;
  }();
  return *net;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string payload(data, data + size);
  try {
    hsconas::util::ByteReader r(payload);
    hsconas::nn::import_calibration(model(), r);
    r.expect_done();
  } catch (const hsconas::Error&) {
    // Truncated streams, wrong layer counts, wrong channel counts:
    // Error is the contract.
  }
  return 0;
}
