// Fuzz target: core::parse_checkpoint_image — the sectioned checkpoint
// container parser (magic/version/bounds/CRC). This is the surface that
// reads files back after a crash, so it must reject arbitrary corruption
// with a clean hsconas::Error: no over-allocation (every length is
// bounds-checked against the remaining image before use), no
// out-of-bounds reads, no exception type other than Error.

#include <string>

#include "core/checkpoint.h"
#include "fuzz/fuzz_common.h"
#include "util/error.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string image(data, data + size);
  try {
    (void)hsconas::core::parse_checkpoint_image(image);
  } catch (const hsconas::Error&) {
    // Corrupt containers must fail with Error — that is the crash-safety
    // story the checkpoint tests pin; the fuzzer hunts for everything
    // else.
  }
  return 0;
}
