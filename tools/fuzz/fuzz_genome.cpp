// Fuzz target: core::Arch::from_string — the genome parser that turns
// "k3@0.5 | skip@1.0 | ..." strings (CLI flags, experiment manifests,
// and — next on the roadmap — distributed-search wire messages) back
// into architecture genes.
//
// Invariants: malformed input throws hsconas::Error; accepted input
// round-trips — to_string() of the parsed arch parses back to an equal
// arch against the same space.

#include <cstdlib>
#include <string>

#include "core/arch.h"
#include "core/search_space.h"
#include "fuzz/fuzz_common.h"
#include "util/error.h"

namespace {

const hsconas::core::SearchSpace& space() {
  // The proxy space exercises every token family the grammar has
  // (all block kinds, several channel factors, the int8 prefix).
  static const hsconas::core::SearchSpace s(
      hsconas::core::SearchSpaceConfig::proxy());
  return s;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(data, data + size);
  try {
    const hsconas::core::Arch arch =
        hsconas::core::Arch::from_string(space(), text);
    const std::string printed = arch.to_string(space());
    const hsconas::core::Arch again =
        hsconas::core::Arch::from_string(space(), printed);
    if (!(again == arch)) std::abort();
  } catch (const hsconas::Error&) {
    // Unknown ops, bad factors, wrong layer counts: Error is the
    // contract.
  }
  return 0;
}
