// hsconas — umbrella command-line tool.
//
//   hsconas search   --device=edge [--constraint=34] [--layout=A] ...
//   hsconas predict  --arch="shuffle_k3@0.5 | ..." [--device=gpu] ...
//   hsconas pareto   --device=cpu [--generations=25] ...
//   hsconas baselines
//
// `search` runs the full pipeline (surrogate accuracy at paper scale) and
// writes a JSON report; `predict` prices a given architecture on all
// devices (latency, energy, compute); `pareto` evolves the
// accuracy-latency front; `baselines` prints the Table I zoo on the
// simulated devices.

#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/zoo.h"
#include "core/accuracy_surrogate.h"
#include "core/energy_model.h"
#include "core/lowering.h"
#include "core/pareto.h"
#include "core/pipeline.h"
#include "hwsim/energy.h"
#include "hwsim/registry.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace hsconas;

int usage() {
  std::fputs(
      "usage: hsconas <command> [--help | options]\n\n"
      "commands:\n"
      "  search     run the full HSCoNAS pipeline for a target device\n"
      "  predict    price one architecture on every device\n"
      "  pareto     evolve the accuracy-latency front for a device\n"
      "  baselines  print the Table I baseline zoo on the simulators\n",
      stdout);
  return 2;
}

core::SearchSpaceConfig layout_config(const std::string& layout,
                                      const std::string& family = "shuffle") {
  core::SearchSpaceConfig cfg;
  if (layout == "A" || layout == "a") {
    cfg = core::SearchSpaceConfig::imagenet_layout_a();
  } else if (layout == "B" || layout == "b") {
    cfg = core::SearchSpaceConfig::imagenet_layout_b();
  } else {
    throw InvalidArgument("--layout must be A or B");
  }
  if (family == "mbconv") {
    cfg = cfg.with_family(nn::OpFamily::kMbConv);
  } else if (family != "shuffle") {
    throw InvalidArgument("--family must be shuffle or mbconv");
  }
  return cfg;
}

int cmd_search(int argc, char** argv) {
  util::Cli cli("hsconas search: full pipeline, surrogate accuracy");
  cli.add_option("device", "edge", "target: gpu | cpu | edge");
  cli.add_option("constraint", "0", "latency budget T ms (0 = paper default)");
  cli.add_option("layout", "A", "channel layout: A or B");
  cli.add_option("family", "shuffle", "operator family: shuffle | mbconv");
  cli.add_option("generations", "20", "EA generations");
  cli.add_option("population", "50", "EA population");
  cli.add_option("seed", "1", "seed");
  cli.add_option("report", "hsconas_search.json", "JSON report path");
  if (!cli.parse(argc, argv)) return 0;

  core::PipelineConfig cfg;
  cfg.space = layout_config(cli.get("layout"), cli.get("family"));
  cfg.device = cli.get("device");
  cfg.constraint_ms = cli.get_double("constraint");
  cfg.use_surrogate = true;
  cfg.evolution.generations = static_cast<int>(cli.get_int("generations"));
  cfg.evolution.population = static_cast<int>(cli.get_int("population"));
  cfg.evolution.parents = cfg.evolution.population * 2 / 5;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  core::Pipeline pipeline(cfg);
  const core::PipelineResult result = pipeline.run();

  const double err = (1.0 - result.best_accuracy) * 100.0;
  std::printf("winner (layout %s, %s, T=%.0fms):\n  %s\n",
              cli.get("layout").c_str(), cfg.device.c_str(),
              result.constraint_ms,
              result.best_arch.to_string(pipeline.space()).c_str());
  std::printf("top-1 err %.1f%% | top-5 err %.1f%% | lat %.1f ms "
              "(measured %.1f) | %.0f MMacs\n",
              err, core::AccuracySurrogate::top5_from_top1(err),
              result.predicted_latency_ms, result.measured_latency_ms,
              core::arch_macs(result.best_arch, pipeline.space()) / 1e6);

  core::pipeline_report_json(result, pipeline.space())
      .save(cli.get("report"));
  std::printf("report written to %s\n", cli.get("report").c_str());
  return 0;
}

int cmd_predict(int argc, char** argv) {
  util::Cli cli("hsconas predict: price one architecture everywhere");
  cli.add_option("arch", "",
                 "architecture string, e.g. \"shuffle_k3@0.5 | ... \" "
                 "(20 layers; required)");
  cli.add_option("layout", "A", "channel layout: A or B");
  cli.add_option("family", "shuffle", "operator family: shuffle | mbconv");
  if (!cli.parse(argc, argv)) return 0;
  if (cli.get("arch").empty()) {
    throw InvalidArgument("predict: --arch is required");
  }

  const core::SearchSpace space(
      layout_config(cli.get("layout"), cli.get("family")));
  const core::Arch arch = core::Arch::from_string(space, cli.get("arch"));
  const auto net = core::lower_network(arch, space);
  const core::AccuracySurrogate surrogate(space);
  const double err = surrogate.top1_error(arch);

  std::printf("architecture: %s\n", arch.to_string(space).c_str());
  std::printf("estimated ImageNet top-1/top-5 err: %.1f%% / %.1f%%\n",
              err, core::AccuracySurrogate::top5_from_top1(err));
  std::printf("compute: %.0f MMacs, %.2f M params\n\n",
              hwsim::network_macs(net) / 1e6,
              hwsim::network_params(net) / 1e6);

  util::Table table({"device", "batch", "latency (ms)", "energy (mJ)",
                     "mean power (W)"});
  for (const std::string& name : hwsim::device_names()) {
    const hwsim::DeviceSimulator device(hwsim::device_by_name(name));
    const hwsim::EnergySimulator energy(hwsim::energy_by_name(name), device);
    const int batch = device.profile().default_batch;
    const double lat = device.network_latency_ms(net, batch);
    const double mj = energy.network_energy_mj(net, batch);
    table.add_row({name, util::format("%d", batch),
                   util::format("%.2f", lat), util::format("%.1f", mj),
                   util::format("%.1f", mj / lat)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_pareto(int argc, char** argv) {
  util::Cli cli("hsconas pareto: accuracy-latency front in one run");
  cli.add_option("device", "edge", "target: gpu | cpu | edge");
  cli.add_option("layout", "A", "channel layout: A or B");
  cli.add_option("family", "shuffle", "operator family: shuffle | mbconv");
  cli.add_option("generations", "25", "generations");
  cli.add_option("population", "60", "population");
  cli.add_option("seed", "19", "seed");
  if (!cli.parse(argc, argv)) return 0;

  const core::SearchSpace space(
      layout_config(cli.get("layout"), cli.get("family")));
  const hwsim::DeviceSimulator device(
      hwsim::device_by_name(cli.get("device")));
  const core::LatencyModel latency(
      space, device,
      core::LatencyModel::Config{
          device.profile().default_batch, 50,
          static_cast<std::uint64_t>(cli.get_int("seed")), true});
  const core::AccuracySurrogate surrogate(space);

  core::ParetoSearch::Config cfg;
  cfg.generations = static_cast<int>(cli.get_int("generations"));
  cfg.population = static_cast<int>(cli.get_int("population"));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  core::ParetoSearch search(
      space, [&](const core::Arch& a) { return surrogate.accuracy(a); },
      latency, cfg);
  const auto result = search.run();

  util::Table table({"latency (ms)", "top-1 err", "architecture"});
  for (const auto& p : result.front) {
    table.add_row({util::format("%.2f", p.latency_ms),
                   util::format("%.2f", (1.0 - p.accuracy) * 100.0),
                   p.arch.to_string(space)});
  }
  std::printf("Pareto front on %s (%zu points):\n%s",
              device.profile().name.c_str(), result.front.size(),
              table.render().c_str());
  return 0;
}

int cmd_baselines(int argc, char** argv) {
  util::Cli cli("hsconas baselines: the Table I zoo on the simulators");
  if (!cli.parse(argc, argv)) return 0;

  util::Table table({"model", "GMacs", "MParams", "gv100 (ms)",
                     "xeon6136 (ms)", "xavier (ms)", "paper top-1"});
  std::vector<hwsim::DeviceSimulator> sims;
  for (const std::string& name : hwsim::device_names()) {
    sims.emplace_back(hwsim::device_by_name(name));
  }
  for (const auto& baseline : baselines::baseline_zoo()) {
    std::vector<std::string> row{
        baseline.name,
        util::format("%.2f", hwsim::network_macs(baseline.network) / 1e9),
        util::format("%.2f", hwsim::network_params(baseline.network) / 1e6)};
    for (const auto& sim : sims) {
      row.push_back(util::format(
          "%.1f", sim.network_latency_ms(baseline.network,
                                         sim.profile().default_batch)));
    }
    row.push_back(util::format("%.1f", baseline.paper_top1_err));
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  // Shift argv so each subcommand parses its own flags.
  argv[1] = argv[0];
  try {
    if (command == "search") return cmd_search(argc - 1, argv + 1);
    if (command == "predict") return cmd_predict(argc - 1, argv + 1);
    if (command == "pareto") return cmd_pareto(argc - 1, argv + 1);
    if (command == "baselines") return cmd_baselines(argc - 1, argv + 1);
    if (command == "--help" || command == "-h") return usage(), 0;
    std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
    return usage();
  } catch (const hsconas::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
