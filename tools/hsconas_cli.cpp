// hsconas — umbrella command-line tool.
//
//   hsconas search   --device=edge [--constraint=34] [--layout=A] ...
//   hsconas predict  --arch="shuffle_k3@0.5 | ..." [--device=gpu] ...
//   hsconas pareto   --device=cpu [--generations=25] ...
//   hsconas profile  --device=xavier [--archs=3] [--iters=10] ...
//   hsconas baselines
//
// `search` runs the full pipeline (surrogate accuracy at paper scale, or
// a real proxy-scale supernet with --accuracy=proxy) and writes a JSON
// report; `predict` prices a given architecture on all devices (latency,
// energy, compute); `pareto` evolves the accuracy-latency front;
// `baselines` prints the Table I zoo on the simulated devices.
//
// Global observability flags (any command, peeled before dispatch):
//   --metrics-out=PATH  dump the metrics registry as JSON on exit
//   --trace-out=PATH    enable the span tracer; write a Chrome/Perfetto
//                       trace (load at https://ui.perfetto.dev) on exit
//   --log-level=LVL     debug | info | warn | error | off
//   --log-json=PATH     mirror log records to PATH as JSONL

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/zoo.h"
#include "core/accuracy_surrogate.h"
#include "core/energy_model.h"
#include "core/lowering.h"
#include "core/pareto.h"
#include "core/pipeline.h"
#include "data/synthetic.h"
#include "eval/profile_runner.h"
#include "hwsim/energy.h"
#include "hwsim/registry.h"
#include "nn/quantize.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "serve/batch_server.h"
#include "serve/load_gen.h"
#include "util/cli.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/table.h"

namespace {

using namespace hsconas;

int usage() {
  std::fputs(
      "usage: hsconas <command> [--help | options]\n\n"
      "commands:\n"
      "  search     run the full HSCoNAS pipeline for a target device\n"
      "  predict    price one architecture on every device\n"
      "  pareto     evolve the accuracy-latency front for a device\n"
      "  profile    measure sampled archs per-op and validate the\n"
      "             latency model (roofline + Kendall-tau report)\n"
      "  serve      batch-scheduled inference server for a discovered\n"
      "             arch, driven by a closed-loop load generator\n"
      "  baselines  print the Table I baseline zoo on the simulators\n\n"
      "global flags (any command):\n"
      "  --metrics-out=PATH  write the metrics registry as JSON on exit\n"
      "  --trace-out=PATH    enable tracing; write a Perfetto trace on exit\n"
      "  --log-level=LVL     debug | info | warn | error | off\n"
      "  --log-json=PATH     mirror log records to PATH as JSONL\n",
      stdout);
  return 2;
}

core::SearchSpaceConfig layout_config(const std::string& layout,
                                      const std::string& family = "shuffle") {
  core::SearchSpaceConfig cfg;
  if (layout == "A" || layout == "a") {
    cfg = core::SearchSpaceConfig::imagenet_layout_a();
  } else if (layout == "B" || layout == "b") {
    cfg = core::SearchSpaceConfig::imagenet_layout_b();
  } else {
    throw InvalidArgument("--layout must be A or B");
  }
  if (family == "mbconv") {
    cfg = cfg.with_family(nn::OpFamily::kMbConv);
  } else if (family != "shuffle") {
    throw InvalidArgument("--family must be shuffle or mbconv");
  }
  return cfg;
}

int cmd_search(int argc, char** argv) {
  util::Cli cli("hsconas search: full pipeline, surrogate accuracy");
  cli.add_option("device", "edge", "target: gpu | cpu | edge");
  cli.add_option("constraint", "0", "latency budget T ms (0 = paper default)");
  cli.add_option("layout", "A", "channel layout: A or B");
  cli.add_option("family", "shuffle", "operator family: shuffle | mbconv");
  cli.add_option("accuracy", "surrogate",
                 "accuracy backend: surrogate (paper-scale, fast) | proxy "
                 "(train a real supernet on the synthetic proxy task)");
  cli.add_option("generations", "20", "EA generations");
  cli.add_option("population", "50", "EA population");
  cli.add_option("seed", "1", "seed");
  cli.add_option("report", "hsconas_search.json", "JSON report path");
  cli.add_option("checkpoint-dir", "",
                 "directory for crash-safe progress snapshots "
                 "(empty = no checkpointing; see docs/ROBUSTNESS.md)");
  cli.add_option("checkpoint-every", "1",
                 "snapshot every N epochs/generations (stage boundaries "
                 "always snapshot)");
  cli.add_option("resume", "0",
                 "1 = continue from checkpoint-dir's pipeline.ckpt if "
                 "present");
  cli.add_flag("quant",
               "add the int8 quantization gene to the search space: "
               "candidates may trade the surrogate's PTQ accuracy drop for "
               "the device's int8 datapath speedup");
  if (!cli.parse(argc, argv)) return 0;

  const std::string accuracy = cli.get("accuracy");
  if (accuracy != "surrogate" && accuracy != "proxy") {
    throw InvalidArgument("--accuracy must be surrogate or proxy");
  }

  core::PipelineConfig cfg;
  cfg.device = cli.get("device");
  cfg.constraint_ms = cli.get_double("constraint");
  cfg.evolution.generations = static_cast<int>(cli.get_int("generations"));
  cfg.evolution.population = static_cast<int>(cli.get_int("population"));
  cfg.evolution.parents = cfg.evolution.population * 2 / 5;
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  cfg.checkpoint_dir = cli.get("checkpoint-dir");
  cfg.checkpoint_every = static_cast<int>(cli.get_int("checkpoint-every"));
  cfg.resume = cli.get_int("resume") != 0;

  std::unique_ptr<data::SyntheticDataset> dataset;
  if (accuracy == "surrogate") {
    cfg.space = layout_config(cli.get("layout"), cli.get("family"));
    cfg.use_surrogate = true;
  } else {
    // Proxy mode trains a *real* supernet, so it runs at proxy scale (the
    // synthetic stand-in task; see DESIGN.md) regardless of --layout.
    cfg.space = core::SearchSpaceConfig::proxy(6, 12, 1);
    if (cli.get("family") == "mbconv") {
      cfg.space = cfg.space.with_family(nn::OpFamily::kMbConv);
    }
    if (cfg.constraint_ms <= 0.0) cfg.constraint_ms = 1.2;
    cfg.use_surrogate = false;
    cfg.initial_epochs = 2;
    cfg.tune_epochs = 1;
    cfg.shrink_layers_per_stage = 1;
    cfg.shrink.samples_per_subspace = 6;
    cfg.eval_batches = 2;
    cfg.train.batch_size = 36;
    cfg.train.lr = 0.08;
    data::SyntheticConfig ds;
    ds.num_classes = 6;
    ds.train_size = 180;
    ds.val_size = 90;
    ds.image_size = 12;
    ds.seed = 77;
    dataset = std::make_unique<data::SyntheticDataset>(ds);
  }
  cfg.space.search_quantization = cli.get_bool("quant");

  core::Pipeline pipeline(cfg);
  const core::PipelineResult result = pipeline.run(dataset.get());

  const double err = (1.0 - result.best_accuracy) * 100.0;
  std::printf("winner (layout %s, %s, T=%.0fms):\n  %s\n",
              cli.get("layout").c_str(), cfg.device.c_str(),
              result.constraint_ms,
              result.best_arch.to_string(pipeline.space()).c_str());
  std::printf("top-1 err %.1f%% | top-5 err %.1f%% | lat %.1f ms "
              "(measured %.1f) | %.0f MMacs\n",
              err, core::AccuracySurrogate::top5_from_top1(err),
              result.predicted_latency_ms, result.measured_latency_ms,
              core::arch_macs(result.best_arch, pipeline.space()) / 1e6);

  core::pipeline_report_json(result, pipeline.space())
      .save(cli.get("report"));
  std::printf("report written to %s\n", cli.get("report").c_str());
  return 0;
}

int cmd_predict(int argc, char** argv) {
  util::Cli cli("hsconas predict: price one architecture everywhere");
  cli.add_option("arch", "",
                 "architecture string, e.g. \"shuffle_k3@0.5 | ... \" "
                 "(20 layers; required)");
  cli.add_option("layout", "A", "channel layout: A or B");
  cli.add_option("family", "shuffle", "operator family: shuffle | mbconv");
  if (!cli.parse(argc, argv)) return 0;
  if (cli.get("arch").empty()) {
    throw InvalidArgument("predict: --arch is required");
  }

  const core::SearchSpace space(
      layout_config(cli.get("layout"), cli.get("family")));
  const core::Arch arch = core::Arch::from_string(space, cli.get("arch"));
  const auto net = core::lower_network(arch, space);
  const core::AccuracySurrogate surrogate(space);
  const double err = surrogate.top1_error(arch);

  std::printf("architecture: %s\n", arch.to_string(space).c_str());
  std::printf("estimated ImageNet top-1/top-5 err: %.1f%% / %.1f%%\n",
              err, core::AccuracySurrogate::top5_from_top1(err));
  std::printf("compute: %.0f MMacs, %.2f M params\n\n",
              hwsim::network_macs(net) / 1e6,
              hwsim::network_params(net) / 1e6);

  util::Table table({"device", "batch", "latency (ms)", "energy (mJ)",
                     "mean power (W)"});
  for (const std::string& name : hwsim::device_names()) {
    const hwsim::DeviceSimulator device(hwsim::device_by_name(name));
    const hwsim::EnergySimulator energy(hwsim::energy_by_name(name), device);
    const int batch = device.profile().default_batch;
    const double lat = device.network_latency_ms(net, batch);
    const double mj = energy.network_energy_mj(net, batch);
    table.add_row({name, util::format("%d", batch),
                   util::format("%.2f", lat), util::format("%.1f", mj),
                   util::format("%.1f", mj / lat)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_pareto(int argc, char** argv) {
  util::Cli cli("hsconas pareto: accuracy-latency front in one run");
  cli.add_option("device", "edge", "target: gpu | cpu | edge");
  cli.add_option("layout", "A", "channel layout: A or B");
  cli.add_option("family", "shuffle", "operator family: shuffle | mbconv");
  cli.add_option("generations", "25", "generations");
  cli.add_option("population", "60", "population");
  cli.add_option("seed", "19", "seed");
  cli.add_flag("quant", "search over fp32 and int8 candidates; the front "
                        "then spans both dtypes");
  if (!cli.parse(argc, argv)) return 0;

  core::SearchSpaceConfig space_cfg =
      layout_config(cli.get("layout"), cli.get("family"));
  space_cfg.search_quantization = cli.get_bool("quant");
  const core::SearchSpace space(space_cfg);
  const hwsim::DeviceSimulator device(
      hwsim::device_by_name(cli.get("device")));
  const core::LatencyModel latency(
      space, device,
      core::LatencyModel::Config{
          device.profile().default_batch, 50,
          static_cast<std::uint64_t>(cli.get_int("seed")), true});
  const core::AccuracySurrogate surrogate(space);

  core::ParetoSearch::Config cfg;
  cfg.generations = static_cast<int>(cli.get_int("generations"));
  cfg.population = static_cast<int>(cli.get_int("population"));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  core::ParetoSearch search(
      space, [&](const core::Arch& a) { return surrogate.accuracy(a); },
      latency, cfg);
  const auto result = search.run();

  util::Table table({"latency (ms)", "top-1 err", "architecture"});
  for (const auto& p : result.front) {
    table.add_row({util::format("%.2f", p.latency_ms),
                   util::format("%.2f", (1.0 - p.accuracy) * 100.0),
                   p.arch.to_string(space)});
  }
  std::printf("Pareto front on %s (%zu points):\n%s",
              device.profile().name.c_str(), result.front.size(),
              table.render().c_str());
  return 0;
}

int cmd_profile(int argc, char** argv) {
  util::Cli cli(
      "hsconas profile: run sampled archs with the per-op profiler and "
      "report predicted-vs-measured latency (per op and per arch)");
  cli.add_option("device", "xavier", "target: gpu | cpu | edge | name");
  cli.add_option("archs", "3", "architectures to sample (>= 1)");
  cli.add_option("iters", "10", "counted iterations per arch");
  cli.add_option("warmup", "2", "warm-up iterations (excluded)");
  cli.add_option("batch", "4", "batch size");
  cli.add_option("seed", "1", "sampling seed");
  cli.add_option("out", "profile.json", "per-op roofline report path");
  cli.add_option("dtype", "f32",
                 "inference datapath: f32 | int8 (int8 calibrates each "
                 "sampled net and prices against the int8 LUT)");
  cli.add_flag("fused", "eval-mode fused conv/BN/act execution");
  cli.add_flag("backward", "profile forward+backward (training mode)");
  if (!cli.parse(argc, argv)) return 0;

  eval::ProfileConfig cfg;
  cfg.device = cli.get("device");
  cfg.num_archs = static_cast<int>(cli.get_int("archs"));
  cfg.iters = static_cast<int>(cli.get_int("iters"));
  cfg.warmup = static_cast<int>(cli.get_int("warmup"));
  cfg.batch = static_cast<int>(cli.get_int("batch"));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  cfg.fused = cli.get_bool("fused");
  cfg.backward = cli.get_bool("backward");
  cfg.dtype = nn::parse_inference_dtype(cli.get("dtype"));

  const eval::ProfileReport report = eval::run_profile(cfg);
  std::fputs(eval::render_profile_report(report).c_str(), stdout);

  const std::string out = cli.get("out");
  if (!out.empty()) {
    eval::profile_report_json(report).save(out);
    std::printf("profile report written to %s\n", out.c_str());
  }
  return 0;
}

/// `--arch` accepts an arch string ("shuffle_k3@0.5 | ..."), a search
/// report JSON path (reads its "winner_string"), or "" for a seeded
/// random sample.
core::Arch serve_arch(const core::SearchSpace& space, const std::string& spec,
                      std::uint64_t seed) {
  if (spec.empty()) {
    util::Rng rng(seed);
    return core::Arch::random(space, rng);
  }
  const bool is_json = spec.size() > 5 &&
                       spec.compare(spec.size() - 5, 5, ".json") == 0;
  if (is_json) {
    const util::Json doc = util::Json::load(spec);
    const util::Json* winner = doc.find("winner_string");
    if (winner == nullptr) {
      throw InvalidArgument("--arch report " + spec +
                            " has no \"winner_string\" key");
    }
    return core::Arch::from_string(space, winner->as_string());
  }
  return core::Arch::from_string(space, spec);
}

int cmd_serve(int argc, char** argv) {
  util::Cli cli(
      "hsconas serve: batch-scheduled inference server over a standalone "
      "proxy-scale network, measured by a closed-loop load generator");
  cli.add_option("arch", "", "arch string, search-report JSON, or empty "
                             "for a seeded random arch");
  cli.add_option("batch-max", "8", "flush a batch at this occupancy");
  cli.add_option("deadline-us", "2000",
                 "flush when the oldest request has waited this long");
  cli.add_option("workers", "2", "concurrent serving lanes");
  cli.add_option("clients", "8", "closed-loop load-generator clients");
  cli.add_option("requests", "50", "measured requests per client");
  cli.add_option("warmup", "5", "warm-up requests per client");
  cli.add_option("seed", "42", "weight-init / sampling seed");
  cli.add_option("out", "", "write the hsconas.serving.v1 report JSON here");
  cli.add_option("dtype", "f32",
                 "lane datapath: f32 | int8 (int8 calibrates every replica "
                 "at startup and serves through the quantized GEMM)");
  cli.add_option("calib-batches", "2",
                 "synthetic calibration batches per replica (int8 only)");
  cli.add_flag("no-fuse", "disable the fused conv/BN/act inference path");
  if (!cli.parse(argc, argv)) return 0;

  const core::SearchSpace space(core::SearchSpaceConfig::proxy());
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const core::Arch arch = serve_arch(space, cli.get("arch"), seed);

  serve::ServerConfig server_cfg;
  server_cfg.batch_max = static_cast<std::size_t>(cli.get_int("batch-max"));
  server_cfg.deadline_us =
      static_cast<std::uint64_t>(cli.get_int("deadline-us"));
  server_cfg.workers = static_cast<std::size_t>(cli.get_int("workers"));
  server_cfg.fuse = !cli.get_bool("no-fuse");
  server_cfg.seed = seed;
  server_cfg.dtype = nn::parse_inference_dtype(cli.get("dtype"));
  server_cfg.calibration_batches =
      static_cast<std::size_t>(cli.get_int("calib-batches"));

  serve::LoadGenConfig load_cfg;
  load_cfg.clients = static_cast<std::size_t>(cli.get_int("clients"));
  load_cfg.requests_per_client =
      static_cast<std::size_t>(cli.get_int("requests"));
  load_cfg.warmup_per_client =
      static_cast<std::size_t>(cli.get_int("warmup"));
  load_cfg.seed = seed;

  serve::BatchServer server(space, arch, server_cfg);
  const serve::LoadGenReport report = serve::run_load(server, load_cfg);
  server.shutdown();

  util::Table table({"metric", "value"});
  table.add_row({"arch", arch.to_string(space)});
  table.add_row({"dtype", nn::inference_dtype_name(server_cfg.dtype)});
  table.add_row({"requests", util::format("%zu", report.total_requests)});
  table.add_row({"errors", util::format("%zu", report.errors)});
  table.add_row({"throughput (req/s)",
                 util::format("%.1f", report.throughput_rps)});
  table.add_row({"latency p50 (ms)",
                 util::format("%.3f", report.latency_p50_ms)});
  table.add_row({"latency p95 (ms)",
                 util::format("%.3f", report.latency_p95_ms)});
  table.add_row({"latency p99 (ms)",
                 util::format("%.3f", report.latency_p99_ms)});
  table.add_row({"batch occupancy (mean)",
                 util::format("%.2f", report.batch_occupancy_mean)});
  table.add_row({"queue depth (peak)",
                 util::format("%.0f", report.queue_depth_peak)});
  table.add_row({"steady-state heap allocs",
                 util::format("%.0f", report.pool_heap_allocs)});
  std::fputs(table.render().c_str(), stdout);

  const std::string out = cli.get("out");
  if (!out.empty()) {
    report.to_json().save(out);
    std::printf("serving report written to %s\n", out.c_str());
  }
  return report.errors == 0 ? 0 : 1;
}

int cmd_baselines(int argc, char** argv) {
  util::Cli cli("hsconas baselines: the Table I zoo on the simulators");
  if (!cli.parse(argc, argv)) return 0;

  util::Table table({"model", "GMacs", "MParams", "gv100 (ms)",
                     "xeon6136 (ms)", "xavier (ms)", "paper top-1"});
  std::vector<hwsim::DeviceSimulator> sims;
  for (const std::string& name : hwsim::device_names()) {
    sims.emplace_back(hwsim::device_by_name(name));
  }
  for (const auto& baseline : baselines::baseline_zoo()) {
    std::vector<std::string> row{
        baseline.name,
        util::format("%.2f", hwsim::network_macs(baseline.network) / 1e9),
        util::format("%.2f", hwsim::network_params(baseline.network) / 1e6)};
    for (const auto& sim : sims) {
      row.push_back(util::format(
          "%.1f", sim.network_latency_ms(baseline.network,
                                         sim.profile().default_batch)));
    }
    row.push_back(util::format("%.1f", baseline.paper_top1_err));
    table.add_row(row);
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

}  // namespace

namespace {

/// If `arg` is `--<key>=value`, return the value; nullptr otherwise.
const char* flag_value(const char* arg, const char* key) {
  const std::size_t n = std::strlen(key);
  if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel the process-wide observability flags before subcommand dispatch
  // (util::Cli rejects unknown keys, so they must never reach it).
  std::string metrics_out, trace_out;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  try {
    for (int i = 0; i < argc; ++i) {
      if (const char* metrics = flag_value(argv[i], "--metrics-out")) {
        metrics_out = metrics;
      } else if (const char* trace = flag_value(argv[i], "--trace-out")) {
        trace_out = trace;
        hsconas::obs::Tracer::enable();
      } else if (const char* level = flag_value(argv[i], "--log-level")) {
        hsconas::util::set_log_level(hsconas::util::parse_log_level(level));
      } else if (const char* sink = flag_value(argv[i], "--log-json")) {
        hsconas::util::set_log_sink(sink);
      } else {
        args.push_back(argv[i]);
      }
    }
  } catch (const hsconas::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const int nargs = static_cast<int>(args.size());
  if (nargs < 2) return usage();
  const std::string command = args[1];
  // Shift argv so each subcommand parses its own flags.
  args[1] = args[0];

  // Flush observability artifacts on every exit path — including errors,
  // where a partial trace is exactly what you want to look at.
  const auto finish = [&](int rc) {
    try {
      if (!metrics_out.empty()) {
        hsconas::obs::save_metrics(metrics_out);
        std::fprintf(stderr, "metrics written to %s\n", metrics_out.c_str());
      }
      if (!trace_out.empty()) {
        hsconas::obs::save_trace(trace_out);
        std::fprintf(stderr, "trace written to %s (load at ui.perfetto.dev)\n",
                     trace_out.c_str());
      }
    } catch (const hsconas::Error& e) {
      std::fprintf(stderr, "error writing observability output: %s\n",
                   e.what());
      if (rc == 0) rc = 1;
    }
    return rc;
  };

  try {
    if (command == "search") return finish(cmd_search(nargs - 1, args.data() + 1));
    if (command == "predict") return finish(cmd_predict(nargs - 1, args.data() + 1));
    if (command == "pareto") return finish(cmd_pareto(nargs - 1, args.data() + 1));
    if (command == "profile") return finish(cmd_profile(nargs - 1, args.data() + 1));
    if (command == "serve") return finish(cmd_serve(nargs - 1, args.data() + 1));
    if (command == "baselines") return finish(cmd_baselines(nargs - 1, args.data() + 1));
    if (command == "--help" || command == "-h") return usage(), 0;
    std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
    return usage();
  } catch (const hsconas::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return finish(1);
  }
}
