#!/usr/bin/env sh
# ci_checks.sh — the full correctness-tooling gate, as CI runs it.
#
#   tools/ci_checks.sh [--fast]
#
# Stages (each fails the script on first error):
#   1. dev-warnings build: configure + build everything with
#      -DHSCONAS_DEV_WARNINGS=ON (-Wall -Wextra -Wshadow -Wconversion,
#      -Werror) and run the full ctest suite.
#   2. bench_compare self-diff smoke: the checked-in BENCH_kernels.json
#      ledger diffed against itself must report zero regressions.
#   3. hsconas_lint over the tree against the checked-in baseline.
#   4. layering gate: the src/ include graph checked against
#      tools/lint/layers.txt (forbidden edges, cycles, unmapped files).
#   5. fuzz smoke: when the toolchain links -fsanitize=fuzzer (clang),
#      each libFuzzer harness runs coverage-guided for ~30s over its
#      corpus; otherwise the always-built replay drivers re-run the
#      checked-in corpora once (the live path on gcc-only hosts).
#   6. clang-tidy over src/ and tools/ (skipped when not installed).
#   7. ASan+UBSan build + full ctest, then an explicit `ctest -L quant`
#      re-run: the int8 GEMM, PTQ calibration, and quantized-search
#      suites exercise every integer accumulation/requantize path under
#      the overflow checkers (skipped with --fast).
#   8. TSan build + full ctest, then explicit `ctest -L kernels`,
#      `ctest -L obs`, and `ctest -L serving` re-runs (GEMM/fused-conv
#      determinism, tracer/profiler, and batch-serving suites) under TSan
#      (skipped with --fast).
#   9. bench_serving closed-loop smoke: a reduced load-generation run
#      through the batch server must finish error-free (skipped with
#      --fast).
#
# Build trees live under ci-build-* in the repo root and are reused
# across runs, so local re-runs are incremental. See
# docs/STATIC_ANALYSIS.md for running any stage by hand.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
fast=0
[ "${1:-}" = "--fast" ] && fast=1

stage() { printf '\n==== ci_checks: %s ====\n' "$1"; }

stage "dev-warnings build (-Werror) + full test suite"
# HSCONAS_FUZZ=ON builds the coverage-guided fuzz binaries when the
# compiler can link -fsanitize=fuzzer; on gcc the option degrades to the
# (always-built) corpus replay drivers, so it is safe to request here.
cmake -S "$root" -B "$root/ci-build-warn" -DHSCONAS_DEV_WARNINGS=ON \
  -DHSCONAS_FUZZ=ON -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$root/ci-build-warn" -j "$jobs"
(cd "$root/ci-build-warn" && ctest --output-on-failure -j "$jobs")

stage "bench_compare self-diff smoke"
# Diffing the ledger against itself exercises the whole parse/match/report
# path and must come out clean; a real old-vs-new diff is a release step.
"$root/ci-build-warn/tools/bench_compare" \
  "$root/BENCH_kernels.json" "$root/BENCH_kernels.json"

stage "hsconas_lint invariant check"
"$root/ci-build-warn/tools/hsconas_lint" --root "$root" \
  --baseline "$root/tools/lint/baseline.txt"

stage "include-graph layering gate (tools/lint/layers.txt)"
# Layer rules only — the invariant check above already covered the line
# and semantic rules; this stage fails on any forbidden edge, module
# cycle, or file missing from the layer spec (zero baseline by policy).
"$root/ci-build-warn/tools/hsconas_lint" --root "$root" --layers \
  --only=layer-forbidden-edge,layer-cycle,layer-unmapped-file

stage "parser fuzz smoke (30s/target when libFuzzer links)"
fuzz_budget="${HSCONAS_FUZZ_SMOKE_SECS:-30}"
for t in json checkpoint genome calibration; do
  if [ -x "$root/ci-build-warn/tools/fuzz/fuzz_$t" ]; then
    # Coverage-guided run seeded from the checked-in corpus; any crash or
    # sanitizer report exits nonzero and fails the gate.
    "$root/ci-build-warn/tools/fuzz/fuzz_$t" \
      -max_total_time="$fuzz_budget" -print_final_stats=1 \
      "$root/tests/fuzz/corpus/$t"
  else
    echo "ci_checks: libFuzzer unavailable; replaying corpus for $t"
    "$root/ci-build-warn/tools/fuzz/fuzz_${t}_replay" \
      "$root/tests/fuzz/corpus/$t"
  fi
done

stage "clang-tidy (if installed)"
"$root/tools/run_clang_tidy.sh" -j "$jobs" "$root/ci-build-warn"

if [ "$fast" -eq 1 ]; then
  stage "done (--fast: sanitizer stages skipped)"
  exit 0
fi

stage "address,undefined sanitizer build + full test suite"
cmake -S "$root" -B "$root/ci-build-asan" \
  -DHSCONAS_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHSCONAS_BUILD_BENCHES=OFF -DHSCONAS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$root/ci-build-asan" -j "$jobs"
(cd "$root/ci-build-asan" && ctest --output-on-failure -j "$jobs")

stage "quantization suites under ASan/UBSan (ctest -L quant)"
# The int8 GEMM microkernel, the PTQ observer/freeze path, and the
# quantized search/checkpoint suites all run integer accumulations and
# requantize epilogues; the dedicated -L quant pass re-runs them serially
# under the address/overflow checkers so a UB shift or accumulator
# overflow cannot hide behind concurrent test noise.
(cd "$root/ci-build-asan" && ctest --output-on-failure -L quant)

stage "thread sanitizer build + full test suite"
cmake -S "$root" -B "$root/ci-build-tsan" \
  -DHSCONAS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHSCONAS_BUILD_BENCHES=OFF -DHSCONAS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$root/ci-build-tsan" -j "$jobs"
(cd "$root/ci-build-tsan" && ctest --output-on-failure -j "$jobs")

stage "kernel determinism suites under TSan (ctest -L kernels)"
# The full suite above already ran these once; the dedicated -L kernels
# pass runs them serially so the multi-worker GEMM/conv interleavings are
# not starved by concurrent test processes on small CI machines.
(cd "$root/ci-build-tsan" && ctest --output-on-failure -L kernels)

stage "tracer/profiler suites under TSan (ctest -L obs)"
# Same reasoning: the trace-ring and per-op profiler tests hammer the
# cross-thread recording paths; a serial re-run under TSan gives the
# watcher thread interleavings room to fire.
(cd "$root/ci-build-tsan" && ctest --output-on-failure -L obs)

stage "batch-serving suites under TSan (ctest -L serving)"
# The serving lanes, the dynamic-batching queue, the thread-local tensor
# pool, and the ThreadPool reconfiguration guard are all cross-thread by
# construction; the serial -L serving re-run gives TSan clean
# interleavings to watch.
(cd "$root/ci-build-tsan" && ctest --output-on-failure -L serving)

stage "serving load-generator smoke (bench_serving, reduced load)"
# Closed-loop end-to-end pass through the batch server: nonzero exit means
# a request errored or produced non-finite logits.
"$root/ci-build-warn/bench/bench_serving" --clients=4 --requests=10 \
  --warmup=4 --workers=1,2 --batch-max=1,4 \
  --out="$root/ci-build-warn/BENCH_serving_smoke.json"

stage "all checks passed"
