#!/usr/bin/env sh
# ci_checks.sh — the full correctness-tooling gate, as CI runs it.
#
#   tools/ci_checks.sh [--fast]
#
# Stages (each fails the script on first error):
#   1. dev-warnings build: configure + build everything with
#      -DHSCONAS_DEV_WARNINGS=ON (-Wall -Wextra -Wshadow -Wconversion,
#      -Werror) and run the full ctest suite.
#   2. hsconas_lint over the tree against the checked-in baseline.
#   3. clang-tidy over src/ and tools/ (skipped when not installed).
#   4. ASan+UBSan build + full ctest (skipped with --fast).
#   5. TSan build + full ctest, then an explicit `ctest -L kernels`
#      re-run of the GEMM/fused-conv determinism suites under TSan
#      (skipped with --fast).
#
# Build trees live under ci-build-* in the repo root and are reused
# across runs, so local re-runs are incremental. See
# docs/STATIC_ANALYSIS.md for running any stage by hand.
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
fast=0
[ "${1:-}" = "--fast" ] && fast=1

stage() { printf '\n==== ci_checks: %s ====\n' "$1"; }

stage "dev-warnings build (-Werror) + full test suite"
cmake -S "$root" -B "$root/ci-build-warn" -DHSCONAS_DEV_WARNINGS=ON \
  -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$root/ci-build-warn" -j "$jobs"
(cd "$root/ci-build-warn" && ctest --output-on-failure -j "$jobs")

stage "hsconas_lint invariant check"
"$root/ci-build-warn/tools/hsconas_lint" --root "$root" \
  --baseline "$root/tools/lint/baseline.txt"

stage "clang-tidy (if installed)"
"$root/tools/run_clang_tidy.sh" "$root/ci-build-warn"

if [ "$fast" -eq 1 ]; then
  stage "done (--fast: sanitizer stages skipped)"
  exit 0
fi

stage "address,undefined sanitizer build + full test suite"
cmake -S "$root" -B "$root/ci-build-asan" \
  -DHSCONAS_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHSCONAS_BUILD_BENCHES=OFF -DHSCONAS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$root/ci-build-asan" -j "$jobs"
(cd "$root/ci-build-asan" && ctest --output-on-failure -j "$jobs")

stage "thread sanitizer build + full test suite"
cmake -S "$root" -B "$root/ci-build-tsan" \
  -DHSCONAS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHSCONAS_BUILD_BENCHES=OFF -DHSCONAS_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$root/ci-build-tsan" -j "$jobs"
(cd "$root/ci-build-tsan" && ctest --output-on-failure -j "$jobs")

stage "kernel determinism suites under TSan (ctest -L kernels)"
# The full suite above already ran these once; the dedicated -L kernels
# pass runs them serially so the multi-worker GEMM/conv interleavings are
# not starved by concurrent test processes on small CI machines.
(cd "$root/ci-build-tsan" && ctest --output-on-failure -L kernels)

stage "all checks passed"
