#include "lint/source_model.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "util/error.h"

namespace hsconas::lint {

bool path_starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool path_ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool is_header_path(const std::string& path) {
  return path_ends_with(path, ".h");
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t find_identifier(const std::string& line, const std::string& ident,
                            std::size_t from) {
  for (std::size_t pos = line.find(ident, from); pos != std::string::npos;
       pos = line.find(ident, pos + 1)) {
    const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
    const std::size_t end = pos + ident.size();
    const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

std::size_t skip_spaces(const std::string& line, std::size_t pos) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])) != 0) {
    ++pos;
  }
  return pos;
}

bool has_call(const std::string& line, const std::string& ident) {
  for (std::size_t pos = find_identifier(line, ident); pos != std::string::npos;
       pos = find_identifier(line, ident, pos + 1)) {
    const std::size_t after = skip_spaces(line, pos + ident.size());
    if (after < line.size() && line[after] == '(') return true;
  }
  return false;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

namespace {

/// Length of the raw-string prefix ending just before `line[quote]` — `R`
/// or an encoding-prefixed `u8R`/`uR`/`UR`/`LR` — or 0 when the quote
/// opens an ordinary string. The prefix must not itself be the tail of a
/// longer identifier ("FOOR" is not a raw-string prefix).
std::size_t raw_prefix_len(const std::string& line, std::size_t quote) {
  static const char* kPrefixes[] = {"u8R", "uR", "UR", "LR", "R"};
  for (const char* p : kPrefixes) {
    const std::size_t n = std::char_traits<char>::length(p);
    if (quote >= n && line.compare(quote - n, n, p) == 0 &&
        (quote == n || !is_ident_char(line[quote - n - 1]))) {
      return n;
    }
  }
  return 0;
}

}  // namespace

std::vector<std::string> strip_to_code(const std::vector<std::string>& raw) {
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: )delim"

  std::vector<std::string> out;
  out.reserve(raw.size());
  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      switch (state) {
        case State::kCode:
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            i = line.size();  // rest of line is a comment
          } else if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            state = State::kBlockComment;
            i += 2;
          } else if (c == '"') {
            // Raw strings are detected at the quote so the encoding-prefixed
            // forms (u8R"…") are caught too; matching at the 'R' alone let
            // their multi-line bodies leak into rule matching as code.
            const std::size_t prefix = raw_prefix_len(line, i);
            if (prefix > 0) {
              // The prefix characters were emitted as code on earlier
              // iterations; they are literal syntax, so blank them.
              for (std::size_t j = i - prefix; j < i; ++j) code[j] = ' ';
              const std::size_t open = line.find('(', i + 1);
              if (open == std::string::npos) {
                i = line.size();  // malformed; treat rest as literal
              } else {
                raw_delim.assign(1, ')');
                raw_delim.append(line, i + 1, open - (i + 1));
                raw_delim += '"';
                state = State::kRawString;
                i = open + 1;
              }
            } else {
              state = State::kString;
              ++i;
            }
          } else if (c == '\'') {
            state = State::kChar;
            ++i;
          } else {
            code[i] = c;
            ++i;
          }
          break;
        case State::kBlockComment: {
          const std::size_t close = line.find("*/", i);
          if (close == std::string::npos) {
            i = line.size();
          } else {
            state = State::kCode;
            i = close + 2;
          }
          break;
        }
        case State::kString:
        case State::kChar: {
          const char quote = state == State::kString ? '"' : '\'';
          if (c == '\\') {
            i += 2;
          } else if (c == quote) {
            state = State::kCode;
            ++i;
          } else {
            ++i;
          }
          break;
        }
        case State::kRawString: {
          const std::size_t close = line.find(raw_delim, i);
          if (close == std::string::npos) {
            i = line.size();
          } else {
            state = State::kCode;
            i = close + raw_delim.size();
          }
          break;
        }
      }
    }
    // Unterminated ordinary string/char literals do not span lines.
    if (state == State::kString || state == State::kChar) state = State::kCode;
    out.push_back(std::move(code));
  }
  return out;
}

namespace {

/// Parse every rule id named by `hsconas-lint-allow(a,b,...)` occurrences
/// in `line` into `out`.
void collect_allows(const std::string& line, std::vector<std::string>* out) {
  static const std::string kTag = "hsconas-lint-allow(";
  for (std::size_t pos = line.find(kTag); pos != std::string::npos;
       pos = line.find(kTag, pos + 1)) {
    const std::size_t open = pos + kTag.size();
    const std::size_t close = line.find(')', open);
    if (close == std::string::npos) continue;
    std::string id;
    for (std::size_t i = open; i <= close; ++i) {
      if (i == close || line[i] == ',') {
        if (!id.empty()) out->push_back(id);
        id.clear();
      } else if (!std::isspace(static_cast<unsigned char>(line[i]))) {
        id += line[i];
      }
    }
  }
}

}  // namespace

FileContext make_file_context(const std::string& path,
                              const std::string& contents) {
  FileContext ctx;
  ctx.path = path;
  ctx.raw = split_lines(contents);
  ctx.code = strip_to_code(ctx.raw);
  ctx.allows.resize(ctx.raw.size());
  for (std::size_t i = 0; i < ctx.raw.size(); ++i) {
    std::vector<std::string> ids;
    collect_allows(ctx.raw[i], &ids);
    for (const std::string& id : ids) {
      ctx.allows[i].push_back(id);  // same line
      if (i + 1 < ctx.raw.size()) ctx.allows[i + 1].push_back(id);  // next
    }
  }
  return ctx;
}

bool is_suppressed(const FileContext& ctx, std::size_t line,
                   const std::string& rule) {
  if (line == 0 || line > ctx.allows.size()) return false;
  const auto& ids = ctx.allows[line - 1];
  return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

namespace {

bool lintable_file(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp";
}

bool skip_directory(const std::string& name) {
  return name == "fixtures" || path_starts_with(name, "build") ||
         name[0] == '.';
}

}  // namespace

std::string read_source_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw Error("hsconas_lint: cannot read " + path);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

std::vector<FileContext> load_tree(const std::string& root,
                                   const std::vector<std::string>& tops) {
  namespace fs = std::filesystem;
  std::vector<FileContext> out;
  for (const std::string& top : tops) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    fs::recursive_directory_iterator it(dir), end;
    for (; it != end; ++it) {
      if (it->is_directory()) {
        if (skip_directory(it->path().filename().string())) {
          it.disable_recursion_pending();
        }
        continue;
      }
      if (!it->is_regular_file() || !lintable_file(it->path())) continue;
      const std::string rel =
          fs::relative(it->path(), fs::path(root)).generic_string();
      out.push_back(
          make_file_context(rel, read_source_file(it->path().string())));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FileContext& a, const FileContext& b) {
              return a.path < b.path;
            });
  return out;
}

}  // namespace hsconas::lint
