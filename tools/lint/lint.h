#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace hsconas::lint {

/// `hsconas_lint` — project invariant checker.
///
/// The reproduction's correctness story (bit-for-bit resumable search,
/// deterministic parallel evaluation, crash-safe checkpoints) rests on a
/// handful of project-wide disciplines: all deserialization goes through
/// the bounds-checked util::ByteReader, all kernel scratch through the
/// tensor::Workspace arena, all randomness through seeded util::Rng
/// streams, all library output through util/logging. This linter makes
/// those disciplines machine-enforced: it walks `src/`, `tools/` and
/// `tests/`, strips comments and string literals, and reports each
/// violation as `file:line rule-id message`.
///
/// Suppression, most local to least local:
///  - inline: a `hsconas-lint-allow(rule-id[,rule-id...])` comment on the
///    offending line or the line directly above it;
///  - baseline: a checked-in file of `count rule-id path` lines recording
///    accepted pre-existing debt per (file, rule). A file/rule pair with
///    at most its baselined number of violations passes; one more and
///    *all* its occurrences are reported (new debt cannot hide behind the
///    ratchet). Shrinking counts are reported as ratchet opportunities.
///  - rule level: `--disable=rule-id` / Options::disabled.
///
/// See docs/STATIC_ANALYSIS.md for the rule catalog.

struct Rule {
  std::string id;           ///< stable kebab-case identifier
  std::string description;  ///< one-line summary for --list-rules
};

/// All rules, in reporting order. IDs are stable — baselines, suppression
/// comments and tests refer to them.
const std::vector<Rule>& rules();

struct Violation {
  std::string file;  ///< path relative to the scanned root, '/'-separated
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

struct Options {
  std::vector<std::string> disabled;  ///< rule ids to skip
  std::vector<std::string> only;      ///< when non-empty, run just these
};

/// True when `rule` survives Options (enabled, and listed when `only` is
/// non-empty).
bool rule_enabled(const Options& opts, const std::string& rule);

/// Lint one file given its contents. `path` must be the root-relative
/// path with '/' separators — rule applicability keys off it.
std::vector<Violation> lint_file(const std::string& path,
                                 const std::string& contents,
                                 const Options& opts = {});

/// Walk `root`/src, `root`/tools and `root`/tests for .h/.cpp files and
/// lint each. Directories named `fixtures` or starting with `build` are
/// skipped (lint-test fixture trees contain deliberate violations).
/// Results are sorted by (file, line).
std::vector<Violation> lint_tree(const std::string& root,
                                 const Options& opts = {});

/// Accepted debt: (file, rule) -> violation count.
using Baseline = std::map<std::pair<std::string, std::string>, std::size_t>;

/// Parse a baseline file's contents ("count rule-id path" per line; '#'
/// comments and blank lines ignored). Throws hsconas::Error on malformed
/// lines.
Baseline parse_baseline(const std::string& text);

/// Load a baseline from disk; a missing file is an empty baseline.
Baseline load_baseline(const std::string& path);

/// Serialize violations as baseline-file text (sorted, commented header).
std::string format_baseline(const std::vector<Violation>& violations);

/// Subtract the baseline: returns only violations in (file, rule) groups
/// whose count exceeds the baselined count. When `ratchet_notes` is
/// non-null it receives one line per baseline entry whose recorded count
/// now exceeds reality (stale debt that should be ratcheted down).
std::vector<Violation> apply_baseline(
    const std::vector<Violation>& violations, const Baseline& baseline,
    std::vector<std::string>* ratchet_notes = nullptr);

/// Render one violation as `file:line rule-id message`.
std::string format_violation(const Violation& v);

/// Render a run as machine-readable JSON (schema "hsconas.lint.v1"):
/// post-baseline violations, the number suppressed by the baseline, and
/// any ratchet notes. Used by `hsconas_lint --format=json`.
std::string format_violations_json(const std::vector<Violation>& active,
                                   std::size_t baselined,
                                   const std::vector<std::string>& notes);

}  // namespace hsconas::lint
