#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/lint.h"
#include "lint/source_model.h"

namespace hsconas::lint {

/// Pass 1 — include-graph layering gate.
///
/// Extracts every quoted `#include` under `root`/src, maps each file to a
/// module via the checked-in layering spec (tools/lint/layers.txt), and
/// checks the module-level dependency graph against the spec's allowed
/// edges: forbidden edges, dependency cycles and files the spec does not
/// cover are reported as ordinary violations (`layer-forbidden-edge`,
/// `layer-cycle`, `layer-unmapped-file`). The same graph backs the
/// Graphviz export (`--include-graph=out.dot`) and the per-header
/// transitive fan-in / include-weight report (`--include-metrics`).
///
/// Spec grammar, one directive per line ('#' comments, blank lines ok):
///
///   module <name> <prefix> [<prefix>...]   # dir prefix or exact file;
///                                          # longest prefix wins, so a
///                                          # file-granular submodule can
///                                          # carve files out of its dir
///   allow <from> -> <to>                   # sanctioned dependency
///   waiver <from> -> <to> <rationale...>   # tolerated debt; rationale
///                                          # is mandatory and rendered
///                                          # in reports and the DOT dump

struct LayerModule {
  std::string name;
  std::vector<std::string> prefixes;
};

struct LayerSpec {
  std::vector<LayerModule> modules;  ///< in declaration order
  std::set<std::pair<std::string, std::string>> allowed;
  std::map<std::pair<std::string, std::string>, std::string> waivers;
  std::string path = "<spec>";  ///< for report attribution
};

/// Parse a spec from text; throws hsconas::Error on malformed directives,
/// duplicate module names, edges naming unknown modules, or a waiver
/// without a rationale.
LayerSpec parse_layer_spec(const std::string& text);

/// Load a spec from disk; throws hsconas::Error when unreadable.
LayerSpec load_layer_spec(const std::string& path);

/// Module owning `path` (longest-prefix match over every module's
/// prefixes); empty string when no module covers it. A prefix containing
/// a '.' matches exactly one file; otherwise it matches the directory
/// subtree `prefix + "/"`.
std::string module_of(const LayerSpec& spec, const std::string& path);

struct IncludeEdge {
  std::string from_file;  ///< root-relative includer
  std::size_t line = 0;   ///< 1-based line of the #include
  std::string to_file;    ///< root-relative resolved target
};

struct IncludeGraph {
  std::vector<std::string> files;  ///< sorted, root-relative
  std::vector<IncludeEdge> edges;  ///< one per resolved include site
};

/// Build the graph from already-loaded file contexts: a quoted include is
/// resolved against `src/` first, then against the including file's own
/// directory; unresolvable targets (external headers) are dropped.
IncludeGraph build_include_graph(const std::vector<FileContext>& files);

/// Convenience: load `root`/src (same skip rules as the other passes) and
/// build its graph.
IncludeGraph scan_include_graph(const std::string& root);

struct ModuleEdge {
  std::string from;
  std::string to;
  std::size_t count = 0;  ///< number of include sites
  bool allowed = false;
  bool waived = false;
};

struct LayerReport {
  std::vector<Violation> violations;
  std::vector<ModuleEdge> edges;  ///< cross-module only, sorted (from, to)
  std::map<std::string, std::size_t> module_files;  ///< files per module
};

/// Check the graph against the spec. Violations honor Options
/// (--only/--disable) like every other rule; waived edges are never
/// violations but stay visible in the report and DOT output.
LayerReport check_layers(const IncludeGraph& graph, const LayerSpec& spec,
                         const Options& opts = {});

/// Deterministic Graphviz digraph of the module-level report: nodes carry
/// file counts, edges carry include-site counts; forbidden edges render
/// red and bold, waived edges dashed with the rationale as a tooltip.
std::string layers_to_dot(const LayerReport& report);

struct IncludeMetrics {
  std::string file;
  std::size_t direct_fan_in = 0;  ///< files including it directly
  std::size_t fan_in = 0;   ///< files that transitively include it
  std::size_t weight = 0;   ///< headers it transitively includes
};

/// Per-file metrics over the transitive closure of `graph`, sorted by
/// fan-in descending, then weight descending, then path.
std::vector<IncludeMetrics> include_metrics(const IncludeGraph& graph);

/// Render the top `top_n` rows (0 = all) as an aligned text table.
std::string format_include_metrics(const std::vector<IncludeMetrics>& rows,
                                   std::size_t top_n);

}  // namespace hsconas::lint
