#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/source_model.h"

namespace hsconas::lint {

/// Pass 2 — semantic rules that need cross-line and cross-file context.
///
/// Unlike the line rules, these first build a declaration index over the
/// whole scanned tree (headers included), then re-walk each file with that
/// index in hand:
///
///  - `unchecked-error-discipline`: a statement that calls a function
///    declared `[[nodiscard]]` or declared to return an Error/Status type
///    and discards the result. The declaration may live in a different
///    header than the call — that is the point of the index; a per-line
///    regex cannot see it. `(void)f(...)` is the sanctioned explicit
///    discard.
///  - `lock-discipline`: a raw `.lock()` / `.unlock()` call whose receiver
///    is a declared mutex (or mutex-named) variable rather than an RAII
///    guard. Guard variables (`std::unique_lock lk; ... lk.unlock();`) are
///    recognized through the same index, so condition-variable idioms stay
///    clean. Complements the TSan CI stages with a static check.

struct SemanticIndex {
  /// Function names whose result must be used: declared [[nodiscard]] or
  /// with an Error/Status return type anywhere in the indexed tree.
  std::set<std::string> must_use;
  /// Identifiers declared with a std mutex type (std::mutex,
  /// std::shared_mutex, ...), including members declared in headers.
  std::set<std::string> mutexes;
  /// Identifiers declared as RAII guards (std::lock_guard,
  /// std::unique_lock, std::scoped_lock, std::shared_lock), including
  /// guard reference parameters.
  std::set<std::string> guards;
};

/// Index declarations across every file (headers and translation units).
SemanticIndex build_semantic_index(const std::vector<FileContext>& files);

/// Run the semantic rules over one file with a (usually tree-wide) index.
/// Both rules police `src/` only — tests and tools may discard results
/// and poke mutexes in fixtures.
void run_semantic_rules(const FileContext& ctx, const SemanticIndex& index,
                        const Options& opts, std::vector<Violation>* out);

}  // namespace hsconas::lint
