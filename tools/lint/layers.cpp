#include "lint/layers.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "util/error.h"

namespace hsconas::lint {

namespace {

constexpr const char* kForbiddenEdge = "layer-forbidden-edge";
constexpr const char* kCycle = "layer-cycle";
constexpr const char* kUnmappedFile = "layer-unmapped-file";

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream in(line);
  std::string field;
  while (in >> field) fields.push_back(field);
  return fields;
}

bool known_module(const LayerSpec& spec, const std::string& name) {
  return std::any_of(spec.modules.begin(), spec.modules.end(),
                     [&](const LayerModule& m) { return m.name == name; });
}

/// Parse `<from> -> <to>` out of fields[1..2 or 1..3]; supports both
/// "a -> b" (three fields) and "a->b" (one field).
std::pair<std::string, std::string> parse_edge(
    const std::vector<std::string>& fields, std::size_t from_index,
    std::size_t* consumed, const std::string& line) {
  const auto malformed = [&]() -> Error {
    return Error("layers: malformed edge in '" + line +
                 "' (want '<from> -> <to>')");
  };
  if (from_index >= fields.size()) throw malformed();
  const std::string& first = fields[from_index];
  const std::size_t arrow = first.find("->");
  if (arrow != std::string::npos) {
    const std::string from = first.substr(0, arrow);
    const std::string to = first.substr(arrow + 2);
    if (from.empty() || to.empty()) throw malformed();
    *consumed = from_index + 1;
    return {from, to};
  }
  if (from_index + 2 >= fields.size() || fields[from_index + 1] != "->") {
    throw malformed();
  }
  *consumed = from_index + 3;
  return {first, fields[from_index + 2]};
}

}  // namespace

LayerSpec parse_layer_spec(const std::string& text) {
  LayerSpec spec;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    const std::size_t hash = line.find('#');
    const std::vector<std::string> fields =
        split_fields(hash == std::string::npos ? line : line.substr(0, hash));
    if (fields.empty()) continue;
    const std::string& directive = fields[0];
    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (directive == "module") {
      if (fields.size() < 3) {
        throw Error("layers: 'module' wants a name and at least one path "
                    "prefix" + where);
      }
      if (known_module(spec, fields[1])) {
        throw Error("layers: duplicate module '" + fields[1] + "'" + where);
      }
      LayerModule m;
      m.name = fields[1];
      m.prefixes.assign(fields.begin() + 2, fields.end());
      spec.modules.push_back(std::move(m));
    } else if (directive == "allow" || directive == "waiver") {
      std::size_t consumed = 0;
      const auto edge = parse_edge(fields, 1, &consumed, line);
      if (!known_module(spec, edge.first) || !known_module(spec, edge.second)) {
        throw Error("layers: edge '" + edge.first + " -> " + edge.second +
                    "' names an undeclared module (declare modules before "
                    "edges)" + where);
      }
      if (directive == "allow") {
        spec.allowed.insert(edge);
      } else {
        std::string rationale;
        for (std::size_t i = consumed; i < fields.size(); ++i) {
          if (!rationale.empty()) rationale += ' ';
          rationale += fields[i];
        }
        if (rationale.empty()) {
          throw Error("layers: waiver '" + edge.first + " -> " + edge.second +
                      "' needs a rationale" + where);
        }
        spec.waivers[edge] = rationale;
      }
    } else {
      throw Error("layers: unknown directive '" + directive + "'" + where);
    }
  }
  if (spec.modules.empty()) {
    throw Error("layers: spec declares no modules");
  }
  return spec;
}

LayerSpec load_layer_spec(const std::string& path) {
  LayerSpec spec = parse_layer_spec(read_source_file(path));
  spec.path = path;
  return spec;
}

std::string module_of(const LayerSpec& spec, const std::string& path) {
  std::string best;
  std::size_t best_len = 0;
  for (const LayerModule& m : spec.modules) {
    for (const std::string& prefix : m.prefixes) {
      const bool exact_file = prefix.find('.') != std::string::npos;
      const bool hit = exact_file ? path == prefix
                                  : path_starts_with(path, (prefix + "/").c_str());
      if (hit && prefix.size() >= best_len) {
        best = m.name;
        best_len = prefix.size();
      }
    }
  }
  return best;
}

IncludeGraph build_include_graph(const std::vector<FileContext>& files) {
  IncludeGraph graph;
  std::set<std::string> known;
  for (const FileContext& ctx : files) {
    graph.files.push_back(ctx.path);
    known.insert(ctx.path);
  }
  std::sort(graph.files.begin(), graph.files.end());

  for (const FileContext& ctx : files) {
    // The scanned trees are rooted one level under the repo root
    // ("src/obs/metrics.h"); quoted includes are root-relative to that
    // level ("obs/metrics.h"), so the tree prefix is re-applied first and
    // the including file's own directory tried second.
    const std::size_t top_slash = ctx.path.find('/');
    const std::string top =
        top_slash == std::string::npos ? "" : ctx.path.substr(0, top_slash + 1);
    const std::size_t dir_slash = ctx.path.rfind('/');
    const std::string dir =
        dir_slash == std::string::npos ? "" : ctx.path.substr(0, dir_slash + 1);
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
      const std::string& code = ctx.code[i];
      const std::size_t inc = code.find("#include");
      if (inc == std::string::npos) continue;
      // The target string was blanked by the lexer; read it from raw.
      const std::string& raw = ctx.raw[i];
      const std::size_t open = raw.find('"', inc);
      if (open == std::string::npos) continue;  // <system> include
      const std::size_t close = raw.find('"', open + 1);
      if (close == std::string::npos) continue;
      const std::string target = raw.substr(open + 1, close - open - 1);
      std::string resolved;
      if (known.count(top + target) != 0) {
        resolved = top + target;
      } else if (known.count(dir + target) != 0) {
        resolved = dir + target;
      } else {
        continue;  // external header
      }
      graph.edges.push_back(IncludeEdge{ctx.path, i + 1, resolved});
    }
  }
  return graph;
}

IncludeGraph scan_include_graph(const std::string& root) {
  return build_include_graph(load_tree(root, {"src"}));
}

LayerReport check_layers(const IncludeGraph& graph, const LayerSpec& spec,
                         const Options& opts) {
  LayerReport report;

  std::map<std::string, std::string> file_module;
  for (const std::string& file : graph.files) {
    const std::string module = module_of(spec, file);
    file_module[file] = module;
    if (module.empty()) {
      if (rule_enabled(opts, kUnmappedFile)) {
        report.violations.push_back(Violation{
            file, 1, kUnmappedFile,
            "file is not covered by any module in " + spec.path +
                "; add it to a module (or a new one) so the layering gate "
                "can police its dependencies"});
      }
    } else {
      ++report.module_files[module];
    }
  }

  // Collapse file edges onto module edges.
  std::map<std::pair<std::string, std::string>, ModuleEdge> edges;
  for (const IncludeEdge& e : graph.edges) {
    const std::string& from = file_module[e.from_file];
    const std::string& to = file_module[e.to_file];
    if (from.empty() || to.empty() || from == to) continue;
    ModuleEdge& me = edges[{from, to}];
    me.from = from;
    me.to = to;
    ++me.count;
    me.allowed = spec.allowed.count({from, to}) != 0;
    me.waived = spec.waivers.count({from, to}) != 0;
    if (!me.allowed && !me.waived && rule_enabled(opts, kForbiddenEdge)) {
      report.violations.push_back(Violation{
          e.from_file, e.line, kForbiddenEdge,
          "module '" + from + "' may not include module '" + to + "' (" +
              e.to_file + "); sanction it with `allow " + from + " -> " + to +
              "` in " + spec.path + ", record a waiver with rationale, or "
              "move the helper to the right layer"});
    }
  }
  for (const auto& [key, edge] : edges) report.edges.push_back(edge);

  // Cycle detection over the observed module graph (waived edges count:
  // a waiver tolerates an edge, not a cycle). Iterative Kahn peeling —
  // whatever survives sits on at least one cycle; the residual graph is
  // then split into its strongly connected components for reporting.
  if (rule_enabled(opts, kCycle)) {
    std::map<std::string, std::set<std::string>> adj;
    std::map<std::string, std::size_t> indegree;
    for (const auto& [key, edge] : edges) {
      if (adj[edge.from].insert(edge.to).second) ++indegree[edge.to];
      indegree.emplace(edge.from, indegree[edge.from]);
    }
    std::vector<std::string> queue;
    for (const auto& [node, deg] : indegree) {
      if (deg == 0) queue.push_back(node);
    }
    std::set<std::string> removed;
    while (!queue.empty()) {
      const std::string node = queue.back();
      queue.pop_back();
      removed.insert(node);
      for (const std::string& next : adj[node]) {
        if (--indegree[next] == 0) queue.push_back(next);
      }
    }
    std::set<std::string> cyclic;
    for (const auto& [node, deg] : indegree) {
      if (removed.count(node) == 0) cyclic.insert(node);
    }
    // Split the cyclic residue into components (undirected reachability is
    // enough here: every residual node is on a cycle, and the message
    // names the member modules rather than one specific walk).
    std::set<std::string> seen;
    for (const std::string& start : cyclic) {
      if (seen.count(start) != 0) continue;
      std::vector<std::string> component, stack{start};
      seen.insert(start);
      while (!stack.empty()) {
        const std::string node = stack.back();
        stack.pop_back();
        component.push_back(node);
        for (const std::string& next : adj[node]) {
          if (cyclic.count(next) != 0 && seen.insert(next).second) {
            stack.push_back(next);
          }
        }
        for (const auto& [other, targets] : adj) {
          if (cyclic.count(other) != 0 && targets.count(node) != 0 &&
              seen.insert(other).second) {
            stack.push_back(other);
          }
        }
      }
      std::sort(component.begin(), component.end());
      std::string names;
      for (const std::string& name : component) {
        if (!names.empty()) names += " <-> ";
        names += name;
      }
      report.violations.push_back(Violation{
          spec.path, 1, kCycle,
          "dependency cycle among modules: " + names +
              "; break it by moving the shared helper down a layer or "
              "inverting one dependency (fn-pointer registration, "
              "forward declaration)"});
    }
  }

  std::sort(report.violations.begin(), report.violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return report;
}

std::string layers_to_dot(const LayerReport& report) {
  std::string out;
  out += "digraph hsconas_modules {\n";
  out += "  rankdir=BT;\n";
  out += "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (const auto& [name, files] : report.module_files) {
    out += "  \"" + name + "\" [label=\"" + name + "\\n" +
           std::to_string(files) + " files\"];\n";
  }
  for (const ModuleEdge& e : report.edges) {
    out += "  \"" + e.from + "\" -> \"" + e.to + "\" [label=\"" +
           std::to_string(e.count) + "\"";
    if (!e.allowed && !e.waived) {
      out += ", color=red, penwidth=2.0";
    } else if (e.waived) {
      out += ", style=dashed";
    }
    out += "];\n";
  }
  out += "}\n";
  return out;
}

std::vector<IncludeMetrics> include_metrics(const IncludeGraph& graph) {
  std::map<std::string, std::set<std::string>> fwd, rev;
  for (const IncludeEdge& e : graph.edges) {
    fwd[e.from_file].insert(e.to_file);
    rev[e.to_file].insert(e.from_file);
  }
  const auto reachable =
      [](const std::map<std::string, std::set<std::string>>& adj,
         const std::string& start) {
        std::set<std::string> seen;
        std::vector<std::string> stack{start};
        while (!stack.empty()) {
          const std::string node = stack.back();
          stack.pop_back();
          const auto it = adj.find(node);
          if (it == adj.end()) continue;
          for (const std::string& next : it->second) {
            if (next != start && seen.insert(next).second) {
              stack.push_back(next);
            }
          }
        }
        return seen.size();
      };

  std::vector<IncludeMetrics> rows;
  rows.reserve(graph.files.size());
  for (const std::string& file : graph.files) {
    IncludeMetrics m;
    m.file = file;
    const auto direct = rev.find(file);
    m.direct_fan_in = direct == rev.end() ? 0 : direct->second.size();
    m.fan_in = reachable(rev, file);
    m.weight = reachable(fwd, file);
    rows.push_back(std::move(m));
  }
  std::sort(rows.begin(), rows.end(),
            [](const IncludeMetrics& a, const IncludeMetrics& b) {
              if (a.fan_in != b.fan_in) return a.fan_in > b.fan_in;
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.file < b.file;
            });
  return rows;
}

std::string format_include_metrics(const std::vector<IncludeMetrics>& rows,
                                   std::size_t top_n) {
  std::size_t width = std::string("file").size();
  const std::size_t shown =
      top_n == 0 ? rows.size() : std::min(top_n, rows.size());
  for (std::size_t i = 0; i < shown; ++i) {
    width = std::max(width, rows[i].file.size());
  }
  std::ostringstream out;
  out << "include fan-in / weight (" << shown << " of " << rows.size()
      << " files)\n";
  out.width(0);
  std::string header = "file";
  header.resize(width, ' ');
  out << header << "  fan-in  direct  weight\n";
  for (std::size_t i = 0; i < shown; ++i) {
    std::string file = rows[i].file;
    file.resize(width, ' ');
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  %6zu  %6zu  %6zu\n", rows[i].fan_in,
                  rows[i].direct_fan_in, rows[i].weight);
    out << file << buf;
  }
  return out.str();
}

}  // namespace hsconas::lint
