#include "lint/semantic.h"

#include <algorithm>
#include <cctype>

namespace hsconas::lint {

namespace {

constexpr const char* kUncheckedError = "unchecked-error-discipline";
constexpr const char* kLockDiscipline = "lock-discipline";

void report(const FileContext& ctx, std::vector<Violation>* out,
            const Options& opts, std::size_t line, const char* rule,
            const std::string& message) {
  if (!rule_enabled(opts, rule)) return;
  if (is_suppressed(ctx, line, rule)) return;
  out->push_back(Violation{ctx.path, line, rule, message});
}

/// Identifier (with no qualifier glue) ending at `end` in `line`; empty
/// when the preceding token is not an identifier.
std::string ident_before(const std::string& line, std::size_t end) {
  std::size_t begin = end;
  while (begin > 0 && is_ident_char(line[begin - 1])) --begin;
  return line.substr(begin, end - begin);
}

/// Identifier starting at `pos`; empty when line[pos] does not open one.
std::string ident_at(const std::string& line, std::size_t pos) {
  if (pos >= line.size() || !is_ident_char(line[pos]) ||
      std::isdigit(static_cast<unsigned char>(line[pos])) != 0) {
    return {};
  }
  std::size_t end = pos;
  while (end < line.size() && is_ident_char(line[end])) ++end;
  return line.substr(pos, end - pos);
}

bool is_std_qualified(const std::string& line, std::size_t pos) {
  return pos >= 5 && line.compare(pos - 5, 5, "std::") == 0;
}

// ---------------------------------------------------------------------------
// Declaration indexing.

/// Record the function name declared after a `[[nodiscard]]` attribute:
/// the identifier directly before the first '(' within the attribute's
/// line or the next two (multi-line signatures).
void index_nodiscard(const std::vector<std::string>& code, std::size_t i,
                     std::size_t attr_end, SemanticIndex* index) {
  std::string joined = code[i].substr(attr_end);
  for (std::size_t k = i + 1; k < code.size() && k <= i + 2; ++k) {
    joined += ' ';
    joined += code[k];
  }
  const std::size_t open = joined.find('(');
  if (open == std::string::npos) return;
  std::size_t end = open;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(joined[end - 1])) != 0) {
    --end;
  }
  const std::string name = ident_before(joined, end);
  if (!name.empty()) index->must_use.insert(name);
}

/// Record functions declared to return an Error/Status type:
/// `<qualifiers> Error name(...)`. The occurrence must be a return type,
/// not a qualifier (`Error::x`), a throw (`throw Error(...)`), or a
/// variable initialization (no '(' directly after the next identifier
/// fails the match anyway; `Error e(msg)` is accepted as the cost of a
/// lexical indexer and is harmless unless `e(...)` is later discarded).
void index_error_returns(const std::string& line, SemanticIndex* index) {
  static const char* kErrorTypes[] = {"Error", "InvalidArgument",
                                      "InternalError", "Status"};
  for (const char* type : kErrorTypes) {
    for (std::size_t pos = find_identifier(line, type);
         pos != std::string::npos;
         pos = find_identifier(line, type, pos + 1)) {
      std::size_t after = pos + std::string(type).size();
      if (line.compare(after, 2, "::") == 0) continue;  // qualifier use
      after = skip_spaces(line, after);
      const std::string name = ident_at(line, after);
      if (name.empty()) continue;
      const std::size_t paren = skip_spaces(line, after + name.size());
      if (paren < line.size() && line[paren] == '(') {
        index->must_use.insert(name);
      }
    }
  }
}

void index_mutex_decls(const std::string& line, SemanticIndex* index) {
  static const char* kMutexTypes[] = {"mutex", "recursive_mutex",
                                      "shared_mutex", "timed_mutex",
                                      "recursive_timed_mutex"};
  for (const char* type : kMutexTypes) {
    for (std::size_t pos = find_identifier(line, type);
         pos != std::string::npos;
         pos = find_identifier(line, type, pos + 1)) {
      if (!is_std_qualified(line, pos)) continue;
      std::size_t after = skip_spaces(line, pos + std::string(type).size());
      // `std::mutex` inside template arguments (std::lock_guard<std::mutex>)
      // is a type argument, not a declaration.
      if (after < line.size() && (line[after] == '>' || line[after] == ',')) {
        continue;
      }
      while (after < line.size() && (line[after] == '&' || line[after] == '*')) {
        after = skip_spaces(line, after + 1);
      }
      const std::string name = ident_at(line, after);
      if (!name.empty()) index->mutexes.insert(name);
    }
  }
}

void index_guard_decls(const std::string& line, SemanticIndex* index) {
  static const char* kGuardTypes[] = {"lock_guard", "unique_lock",
                                      "scoped_lock", "shared_lock"};
  for (const char* type : kGuardTypes) {
    for (std::size_t pos = find_identifier(line, type);
         pos != std::string::npos;
         pos = find_identifier(line, type, pos + 1)) {
      if (!is_std_qualified(line, pos)) continue;
      std::size_t after = skip_spaces(line, pos + std::string(type).size());
      if (after < line.size() && line[after] == '<') {
        int depth = 0;
        while (after < line.size()) {
          if (line[after] == '<') ++depth;
          if (line[after] == '>' && --depth == 0) {
            ++after;
            break;
          }
          ++after;
        }
      }
      after = skip_spaces(line, after);
      while (after < line.size() && (line[after] == '&' || line[after] == '*')) {
        after = skip_spaces(line, after + 1);
      }
      const std::string name = ident_at(line, after);
      if (!name.empty()) index->guards.insert(name);
    }
  }
}

// ---------------------------------------------------------------------------
// lock-discipline.

void rule_lock_discipline(const FileContext& ctx, const SemanticIndex& index,
                          const Options& opts, std::vector<Violation>* out) {
  static const char* kOps[] = {"lock", "unlock"};
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    for (const char* op : kOps) {
      for (std::size_t pos = find_identifier(line, op);
           pos != std::string::npos;
           pos = find_identifier(line, op, pos + 1)) {
        const std::size_t paren = skip_spaces(line, pos + std::string(op).size());
        if (paren >= line.size() || line[paren] != '(') continue;
        // Receiver: `recv.lock()` or `recv->lock()`.
        std::string recv;
        if (pos >= 1 && line[pos - 1] == '.') {
          recv = ident_before(line, pos - 1);
        } else if (pos >= 2 && line.compare(pos - 2, 2, "->") == 0) {
          recv = ident_before(line, pos - 2);
        }
        if (recv.empty()) continue;  // free lock(...), std::lock — not ours
        if (index.guards.count(recv) != 0) continue;  // unique_lock::unlock
        std::string lower = recv;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) {
                         return static_cast<char>(std::tolower(c));
                       });
        const bool mutexish = index.mutexes.count(recv) != 0 ||
                              lower.find("mutex") != std::string::npos ||
                              lower.find("mtx") != std::string::npos;
        if (!mutexish) continue;  // weak_ptr::lock() and friends
        report(ctx, out, opts, i + 1, kLockDiscipline,
               std::string("raw .") + op + "() on mutex '" + recv +
                   "' outside an RAII guard; hold it via "
                   "std::lock_guard/std::unique_lock so every exit path "
                   "releases it (static complement to the TSan CI stages)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// unchecked-error-discipline.

const char* kStatementKeywords[] = {
    "if",     "while",  "for",    "switch",  "return",        "throw",
    "new",    "delete", "case",   "goto",    "do",            "else",
    "sizeof", "using",  "typedef", "co_return", "static_assert"};

bool is_statement_keyword(const std::string& ident) {
  for (const char* k : kStatementKeywords) {
    if (ident == k) return true;
  }
  return false;
}

struct Statement {
  std::string text;       ///< stripped code, newlines preserved as spaces
  std::size_t line = 0;   ///< 1-based line of the statement's first token
};

/// Split the stripped code into statements at ';', '{' and '}'.
/// Preprocessor lines are dropped whole. Good enough for the discard
/// matcher: a `for(;;)` header splits into fragments that simply fail the
/// call-statement shape.
std::vector<Statement> split_statements(const FileContext& ctx) {
  std::vector<Statement> out;
  Statement cur;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    const std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') continue;
    for (std::size_t j = 0; j < line.size(); ++j) {
      const char c = line[j];
      if (c == ';' || c == '{' || c == '}') {
        if (!cur.text.empty()) out.push_back(std::move(cur));
        cur = Statement{};
        continue;
      }
      if (cur.text.empty() &&
          std::isspace(static_cast<unsigned char>(c)) != 0) {
        continue;
      }
      if (cur.text.empty()) cur.line = i + 1;
      cur.text += c;
    }
    if (!cur.text.empty()) cur.text += ' ';
  }
  if (!cur.text.empty() &&
      cur.text.find_first_not_of(" \t") != std::string::npos) {
    out.push_back(std::move(cur));
  }
  return out;
}

/// When `stmt` is exactly a call whose result is discarded —
/// `name(...)`, `ns::obj.name(...)`, etc., with nothing after the closing
/// paren — returns the called function's name; empty otherwise.
/// `(void)name(...)` is the sanctioned explicit discard and never matches.
std::string discarded_call_name(const std::string& stmt) {
  std::size_t pos = skip_spaces(stmt, 0);
  if (stmt.compare(pos, 6, "(void)") == 0) return {};
  std::string last;
  while (true) {
    const std::string ident = ident_at(stmt, pos);
    if (ident.empty()) return {};
    if (last.empty() && is_statement_keyword(ident)) return {};
    last = ident;
    pos = skip_spaces(stmt, pos + ident.size());
    if (pos >= stmt.size()) return {};
    if (stmt.compare(pos, 2, "::") == 0 || stmt.compare(pos, 2, "->") == 0) {
      pos = skip_spaces(stmt, pos + 2);
      continue;
    }
    if (stmt[pos] == '.') {
      pos = skip_spaces(stmt, pos + 1);
      continue;
    }
    if (stmt[pos] == '(') break;
    return {};
  }
  int depth = 0;
  for (; pos < stmt.size(); ++pos) {
    if (stmt[pos] == '(') ++depth;
    if (stmt[pos] == ')' && --depth == 0) {
      ++pos;
      break;
    }
  }
  if (depth != 0) return {};  // call spans a dropped '#' line; bail out
  return skip_spaces(stmt, pos) >= stmt.size() ? last : std::string{};
}

void rule_unchecked_error(const FileContext& ctx, const SemanticIndex& index,
                          const Options& opts, std::vector<Violation>* out) {
  for (const Statement& stmt : split_statements(ctx)) {
    const std::string name = discarded_call_name(stmt.text);
    if (name.empty() || index.must_use.count(name) == 0) continue;
    report(ctx, out, opts, stmt.line, kUncheckedError,
           "result of '" + name +
               "' is discarded, but its declaration is [[nodiscard]] or "
               "returns an Error/Status; check it or discard explicitly "
               "with (void)");
  }
}

}  // namespace

SemanticIndex build_semantic_index(const std::vector<FileContext>& files) {
  SemanticIndex index;
  for (const FileContext& ctx : files) {
    for (std::size_t i = 0; i < ctx.code.size(); ++i) {
      const std::string& line = ctx.code[i];
      for (std::size_t pos = line.find("[[nodiscard]]");
           pos != std::string::npos;
           pos = line.find("[[nodiscard]]", pos + 1)) {
        index_nodiscard(ctx.code, i, pos + 13, &index);
      }
      index_error_returns(line, &index);
      index_mutex_decls(line, &index);
      index_guard_decls(line, &index);
    }
  }
  return index;
}

void run_semantic_rules(const FileContext& ctx, const SemanticIndex& index,
                        const Options& opts, std::vector<Violation>* out) {
  if (!path_starts_with(ctx.path, "src/")) return;
  rule_unchecked_error(ctx, index, opts, out);
  rule_lock_discipline(ctx, index, opts, out);
}

}  // namespace hsconas::lint
