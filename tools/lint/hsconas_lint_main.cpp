// hsconas_lint — walk src/, tools/ and tests/ and enforce the project's
// correctness invariants as named, individually suppressible lint rules.
//
//   hsconas_lint --root <repo> [--baseline <file>] [--disable a,b]
//                [--only a,b] [--write-baseline <file>] [--list-rules]
//
// Exit status: 0 clean, 1 non-baselined violations found, 2 usage/IO
// error. Output format: `file:line rule-id message`, one per line. See
// docs/STATIC_ANALYSIS.md for the rule catalog and suppression syntax.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "util/error.h"

namespace {

void split_csv(const std::string& csv, std::vector<std::string>* out) {
  std::string id;
  for (char c : csv + ",") {
    if (c == ',') {
      if (!id.empty()) out->push_back(id);
      id.clear();
    } else {
      id += c;
    }
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --root <dir> [--baseline <file>] [--disable a,b]\n"
               "       [--only a,b] [--write-baseline <file>] [--list-rules]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  hsconas::lint::Options opts;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (arg == flag && i + 1 < argc) return argv[++i];
      return {};
    };
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--root" || arg.rfind("--root=", 0) == 0) {
      root = value("--root");
    } else if (arg == "--baseline" || arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value("--baseline");
    } else if (arg == "--write-baseline" ||
               arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = value("--write-baseline");
    } else if (arg == "--disable" || arg.rfind("--disable=", 0) == 0) {
      split_csv(value("--disable"), &opts.disabled);
    } else if (arg == "--only" || arg.rfind("--only=", 0) == 0) {
      split_csv(value("--only"), &opts.only);
    } else {
      return usage(argv[0]);
    }
  }

  if (list_rules) {
    for (const auto& rule : hsconas::lint::rules()) {
      std::printf("%-28s %s\n", rule.id.c_str(), rule.description.c_str());
    }
    return 0;
  }

  try {
    const std::vector<hsconas::lint::Violation> all =
        hsconas::lint::lint_tree(root, opts);

    if (!write_baseline_path.empty()) {
      std::ofstream f(write_baseline_path);
      if (!f) {
        std::fprintf(stderr, "hsconas_lint: cannot write %s\n",
                     write_baseline_path.c_str());
        return 2;
      }
      f << hsconas::lint::format_baseline(all);
      std::printf("hsconas_lint: wrote baseline (%zu entries) to %s\n",
                  all.size(), write_baseline_path.c_str());
      return 0;
    }

    const hsconas::lint::Baseline baseline =
        baseline_path.empty() ? hsconas::lint::Baseline{}
                              : hsconas::lint::load_baseline(baseline_path);
    std::vector<std::string> ratchet_notes;
    const std::vector<hsconas::lint::Violation> active =
        hsconas::lint::apply_baseline(all, baseline, &ratchet_notes);

    for (const auto& v : active) {
      std::printf("%s\n", hsconas::lint::format_violation(v).c_str());
    }
    for (const auto& note : ratchet_notes) {
      std::fprintf(stderr, "hsconas_lint: note: %s\n", note.c_str());
    }
    std::printf("hsconas_lint: %zu violation(s), %zu baselined\n",
                active.size(), all.size() - active.size());
    return active.empty() ? 0 : 1;
  } catch (const hsconas::Error& e) {
    std::fprintf(stderr, "hsconas_lint: error: %s\n", e.what());
    return 2;
  }
}
