// hsconas_lint — walk src/, tools/ and tests/ and enforce the project's
// correctness invariants as named, individually suppressible lint rules.
//
//   hsconas_lint --root <repo> [--baseline <file>] [--disable a,b]
//                [--only a,b] [--write-baseline <file>] [--list-rules]
//                [--layers[=spec]] [--include-graph=<out.dot>]
//                [--include-metrics[=N]] [--format=text|json]
//
// --layers adds the include-graph layering pass (spec defaults to
// <root>/tools/lint/layers.txt); --include-graph and --include-metrics
// imply it. Exit status: 0 clean, 1 non-baselined violations found, 2
// usage/IO error. Output format: `file:line rule-id message`, one per
// line, or a JSON document with --format=json. See
// docs/STATIC_ANALYSIS.md for the rule catalog and suppression syntax.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint/layers.h"
#include "lint/lint.h"
#include "util/error.h"

namespace {

void split_csv(const std::string& csv, std::vector<std::string>* out) {
  std::string id;
  for (char c : csv + ",") {
    if (c == ',') {
      if (!id.empty()) out->push_back(id);
      id.clear();
    } else {
      id += c;
    }
  }
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --root <dir> [--baseline <file>] [--disable a,b]\n"
      "       [--only a,b] [--write-baseline <file>] [--list-rules]\n"
      "       [--layers[=spec]] [--include-graph=<out.dot>]\n"
      "       [--include-metrics[=N]] [--format=text|json]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string write_baseline_path;
  std::string layers_spec_path;
  std::string include_graph_path;
  std::string format = "text";
  bool run_layers = false;
  bool print_metrics = false;
  std::size_t metrics_top_n = 15;
  hsconas::lint::Options opts;
  bool list_rules = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (arg == flag && i + 1 < argc) return argv[++i];
      return {};
    };
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--root" || arg.rfind("--root=", 0) == 0) {
      root = value("--root");
    } else if (arg == "--baseline" || arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value("--baseline");
    } else if (arg == "--write-baseline" ||
               arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = value("--write-baseline");
    } else if (arg == "--disable" || arg.rfind("--disable=", 0) == 0) {
      split_csv(value("--disable"), &opts.disabled);
    } else if (arg == "--only" || arg.rfind("--only=", 0) == 0) {
      split_csv(value("--only"), &opts.only);
    } else if (arg == "--layers") {
      run_layers = true;
    } else if (arg.rfind("--layers=", 0) == 0) {
      run_layers = true;
      layers_spec_path = arg.substr(9);
    } else if (arg.rfind("--include-graph=", 0) == 0) {
      run_layers = true;
      include_graph_path = arg.substr(16);
    } else if (arg == "--include-metrics") {
      run_layers = true;
      print_metrics = true;
    } else if (arg.rfind("--include-metrics=", 0) == 0) {
      run_layers = true;
      print_metrics = true;
      metrics_top_n =
          static_cast<std::size_t>(std::stoul(arg.substr(18)));
    } else if (arg == "--format" || arg.rfind("--format=", 0) == 0) {
      format = value("--format");
      if (format != "text" && format != "json") return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }

  if (list_rules) {
    for (const auto& rule : hsconas::lint::rules()) {
      std::printf("%-28s %s\n", rule.id.c_str(), rule.description.c_str());
    }
    return 0;
  }

  try {
    std::vector<hsconas::lint::Violation> all =
        hsconas::lint::lint_tree(root, opts);

    if (run_layers) {
      if (layers_spec_path.empty()) {
        layers_spec_path = root + "/tools/lint/layers.txt";
      }
      const hsconas::lint::LayerSpec spec =
          hsconas::lint::load_layer_spec(layers_spec_path);
      const hsconas::lint::IncludeGraph graph =
          hsconas::lint::scan_include_graph(root);
      const hsconas::lint::LayerReport report =
          hsconas::lint::check_layers(graph, spec, opts);
      all.insert(all.end(), report.violations.begin(),
                 report.violations.end());

      if (!include_graph_path.empty()) {
        std::ofstream f(include_graph_path);
        if (!f) {
          std::fprintf(stderr, "hsconas_lint: cannot write %s\n",
                       include_graph_path.c_str());
          return 2;
        }
        f << hsconas::lint::layers_to_dot(report);
        std::fprintf(stderr, "hsconas_lint: wrote include graph to %s\n",
                     include_graph_path.c_str());
      }
      if (print_metrics) {
        const auto rows = hsconas::lint::include_metrics(graph);
        std::fputs(
            hsconas::lint::format_include_metrics(rows, metrics_top_n)
                .c_str(),
            stdout);
      }
    }

    if (!write_baseline_path.empty()) {
      std::ofstream f(write_baseline_path);
      if (!f) {
        std::fprintf(stderr, "hsconas_lint: cannot write %s\n",
                     write_baseline_path.c_str());
        return 2;
      }
      f << hsconas::lint::format_baseline(all);
      std::printf("hsconas_lint: wrote baseline (%zu entries) to %s\n",
                  all.size(), write_baseline_path.c_str());
      return 0;
    }

    const hsconas::lint::Baseline baseline =
        baseline_path.empty() ? hsconas::lint::Baseline{}
                              : hsconas::lint::load_baseline(baseline_path);
    std::vector<std::string> ratchet_notes;
    const std::vector<hsconas::lint::Violation> active =
        hsconas::lint::apply_baseline(all, baseline, &ratchet_notes);

    if (format == "json") {
      std::fputs(hsconas::lint::format_violations_json(
                     active, all.size() - active.size(), ratchet_notes)
                     .c_str(),
                 stdout);
      return active.empty() ? 0 : 1;
    }

    for (const auto& v : active) {
      std::printf("%s\n", hsconas::lint::format_violation(v).c_str());
    }
    for (const auto& note : ratchet_notes) {
      std::fprintf(stderr, "hsconas_lint: note: %s\n", note.c_str());
    }
    std::printf("hsconas_lint: %zu violation(s), %zu baselined\n",
                active.size(), all.size() - active.size());
    return active.empty() ? 0 : 1;
  } catch (const hsconas::Error& e) {
    std::fprintf(stderr, "hsconas_lint: error: %s\n", e.what());
    return 2;
  }
}
