#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hsconas::lint {

/// Shared lexing model for every hsconas_lint pass.
///
/// The analyzer grew from a single-file line lexer into three passes —
/// line rules (lint.cpp), cross-file semantic rules (semantic.cpp) and
/// the include-graph layering gate (layers.cpp) — which all consume the
/// same preprocessed view of a source file: the raw lines, a
/// comment/string-stripped "code" shadow with identical line structure,
/// and the per-line `hsconas-lint-allow(...)` suppression sets. This
/// header is that common substrate; it is internal to tools/lint and
/// tests, not part of the library API.

struct FileContext {
  std::string path;               ///< root-relative, '/'-separated
  std::vector<std::string> raw;   ///< verbatim lines
  std::vector<std::string> code;  ///< comments/strings blanked to spaces
  /// allows[i]: rule ids suppressed for raw line i+1 (same line or the
  /// line directly above carries the comment).
  std::vector<std::vector<std::string>> allows;
};

/// Split text into lines (without terminators). A trailing newline does
/// not produce an empty final line.
std::vector<std::string> split_lines(const std::string& text);

/// Replace comments, string literals and char literals with spaces so the
/// rule matchers only ever see code. Handles // and /* */ across lines,
/// escape sequences, and raw strings — including multi-line bodies and
/// the encoding-prefixed forms (u8R"…", uR"…", UR"…", LR"…"), whose
/// bodies previously leaked into rule matching line by line. Line
/// structure (count and lengths) is preserved.
std::vector<std::string> strip_to_code(const std::vector<std::string>& raw);

/// Build the full per-file context (raw + code + suppression sets).
FileContext make_file_context(const std::string& path,
                              const std::string& contents);

/// True when `rule` is suppressed at 1-based `line` by an inline
/// `hsconas-lint-allow(...)` comment on that line or the line above.
bool is_suppressed(const FileContext& ctx, std::size_t line,
                   const std::string& rule);

// ---------------------------------------------------------------------------
// Token helpers shared by the rule matchers.

bool is_ident_char(char c);

/// Find `ident` as a whole identifier in `line` starting at `from`;
/// npos when absent. "rand" does not match inside "operand".
std::size_t find_identifier(const std::string& line, const std::string& ident,
                            std::size_t from = 0);

std::size_t skip_spaces(const std::string& line, std::size_t pos);

/// `ident` used as a call: identifier immediately (modulo spaces)
/// followed by '('.
bool has_call(const std::string& line, const std::string& ident);

bool path_starts_with(const std::string& s, const char* prefix);
bool path_ends_with(const std::string& s, const char* suffix);
bool is_header_path(const std::string& path);

// ---------------------------------------------------------------------------
// Tree loading shared by the passes.

/// Read one file; throws hsconas::Error when unreadable.
std::string read_source_file(const std::string& path);

/// Walk `root`/<top> for each top in `tops` and load every .h/.cpp into a
/// FileContext keyed by root-relative path. Directories named `fixtures`
/// or starting with `build`, and dot-directories, are skipped (lint-test
/// fixture trees contain deliberate violations). Results are sorted by
/// path so every pass sees a deterministic order.
std::vector<FileContext> load_tree(const std::string& root,
                                   const std::vector<std::string>& tops);

}  // namespace hsconas::lint
