#include "lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "lint/semantic.h"
#include "lint/source_model.h"
#include "util/error.h"

namespace hsconas::lint {

namespace {

bool starts_with(const std::string& s, const char* prefix) {
  return path_starts_with(s, prefix);
}

bool is_header(const std::string& path) { return is_header_path(path); }

/// `fprintf`/`fputs`-style call whose first argument is `stdout`.
bool has_stdout_call(const std::string& line, const std::string& ident) {
  for (std::size_t pos = find_identifier(line, ident); pos != std::string::npos;
       pos = find_identifier(line, ident, pos + 1)) {
    std::size_t after = skip_spaces(line, pos + ident.size());
    if (after >= line.size() || line[after] != '(') continue;
    after = skip_spaces(line, after + 1);
    if (find_identifier(line.substr(after, 6), "stdout") == 0) return true;
  }
  return false;
}

/// `new` expression that allocates an array: `new` then '[' before any
/// '(' or ';' (so `new Foo(a[i])` does not match but `new float[n]` does).
bool has_array_new(const std::string& line) {
  for (std::size_t pos = find_identifier(line, "new"); pos != std::string::npos;
       pos = find_identifier(line, "new", pos + 1)) {
    for (std::size_t i = pos + 3; i < line.size(); ++i) {
      const char c = line[i];
      if (c == '[') return true;
      if (c == '(' || c == ';' || c == ',') break;
    }
  }
  return false;
}

bool line_is_blank_or_stripped(const std::string& code_line) {
  return code_line.find_first_not_of(" \t") == std::string::npos;
}

void report(const FileContext& ctx, std::vector<Violation>* out,
            const Options& opts, std::size_t line, const char* rule,
            const std::string& message) {
  if (!rule_enabled(opts, rule)) return;
  if (is_suppressed(ctx, line, rule)) return;
  out->push_back(Violation{ctx.path, line, rule, message});
}

// ---------------------------------------------------------------------------
// Line rules. Each takes the preprocessed file and appends violations.

constexpr const char* kSerialRawMemcpy = "serial-raw-memcpy";
constexpr const char* kSerialPointerCast = "serial-pointer-cast";
constexpr const char* kScratchDiscipline = "scratch-discipline";
constexpr const char* kThreadDiscipline = "thread-discipline";
constexpr const char* kRngDiscipline = "rng-discipline";
constexpr const char* kTimingDiscipline = "timing-discipline";
constexpr const char* kQuantDtypeDiscipline = "quant-dtype-discipline";
constexpr const char* kLogNoStdio = "log-no-stdio";
constexpr const char* kTraceScopeInHeader = "trace-scope-in-header";
constexpr const char* kIncludePragmaOnce = "include-pragma-once";
constexpr const char* kIncludeRelativeParent = "include-relative-parent";
constexpr const char* kIncludeIostreamInHeader = "include-iostream-in-header";

bool in_library_or_tools(const std::string& p) {
  return starts_with(p, "src/") || starts_with(p, "tools/");
}

bool is_serial_impl(const std::string& p) {
  return starts_with(p, "src/util/serial");
}

void rule_serial_raw_memcpy(const FileContext& ctx, const Options& opts,
                            std::vector<Violation>* out) {
  if (!in_library_or_tools(ctx.path) || is_serial_impl(ctx.path)) return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (has_call(ctx.code[i], "memcpy") || has_call(ctx.code[i], "memmove")) {
      report(ctx, out, opts, i + 1, kSerialRawMemcpy,
             "raw memcpy/memmove outside util/serial; deserialization must "
             "go through the bounds-checked util::ByteReader");
    }
  }
}

void rule_serial_pointer_cast(const FileContext& ctx, const Options& opts,
                              std::vector<Violation>* out) {
  if (!in_library_or_tools(ctx.path) || is_serial_impl(ctx.path)) return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (find_identifier(ctx.code[i], "reinterpret_cast") !=
        std::string::npos) {
      report(ctx, out, opts, i + 1, kSerialPointerCast,
             "reinterpret_cast outside util/serial; type-punning "
             "deserialization must go through util::ByteReader");
    }
  }
}

/// Directories bound to the thread/timing hot-path disciplines: the
/// compute kernels themselves plus the serving lanes, whose parallelism
/// must stay on util::ThreadPool and whose timestamps feed the same
/// traces. (Scratch discipline stays kernel-only: serving client/request
/// buffers are preallocated vectors by design, not Workspace leases.)
bool is_discipline_dir(const std::string& p) {
  return starts_with(p, "src/tensor/") || starts_with(p, "src/nn/") ||
         starts_with(p, "src/serve/");
}

void rule_scratch_discipline(const FileContext& ctx, const Options& opts,
                             std::vector<Violation>* out) {
  const bool kernel_dir = starts_with(ctx.path, "src/tensor/") ||
                          starts_with(ctx.path, "src/nn/");
  if (!kernel_dir) return;
  // The tensor container, the scratch arena, and the recycling pool are
  // the three owners allowed to allocate.
  if (starts_with(ctx.path, "src/tensor/tensor") ||
      starts_with(ctx.path, "src/tensor/workspace") ||
      starts_with(ctx.path, "src/tensor/pool_allocator")) {
    return;
  }
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (has_call(line, "malloc") || has_call(line, "calloc") ||
        has_call(line, "realloc") || has_array_new(line)) {
      report(ctx, out, opts, i + 1, kScratchDiscipline,
             "heap allocation in a kernel hot path; lease scratch from "
             "tensor::Workspace::tls() instead");
    }
    if (!is_header(ctx.path) &&
        line.find("std::vector<float>") != std::string::npos) {
      report(ctx, out, opts, i + 1, kScratchDiscipline,
             "ad-hoc std::vector<float> scratch in a kernel translation "
             "unit; lease from tensor::Workspace::tls() instead");
    }
  }
}

/// `std::thread` as a whole token (so `std::this_thread` and
/// `thread_local` do not match): "std::" directly before an identifier
/// occurrence of "thread".
bool has_std_thread(const std::string& line) {
  for (std::size_t pos = find_identifier(line, "thread");
       pos != std::string::npos;
       pos = find_identifier(line, "thread", pos + 1)) {
    if (pos >= 5 && line.compare(pos - 5, 5, "std::") == 0) return true;
  }
  return false;
}

void rule_thread_discipline(const FileContext& ctx, const Options& opts,
                            std::vector<Violation>* out) {
  if (!is_discipline_dir(ctx.path)) return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (has_std_thread(ctx.code[i])) {
      report(ctx, out, opts, i + 1, kThreadDiscipline,
             "raw std::thread in a kernel/serving path; parallelism must "
             "go through util::ThreadPool (nested-safe parallel_for, "
             "deterministic decomposition)");
    }
  }
}

void rule_timing_discipline(const FileContext& ctx, const Options& opts,
                            std::vector<Violation>* out) {
  // Kernel and serving code must take timestamps through obs/timing.h so
  // every reading shares one epoch/clock (and shows up coherently in
  // traces and the profiler). Direct std::chrono / clock_gettime use in
  // src/tensor, src/nn, or src/serve silently forks the time base —
  // serving deadlines and latency percentiles must come off the same
  // clock the kernels are profiled on (obs::wait_for_ns exists for
  // deadline waits).
  if (!is_discipline_dir(ctx.path)) return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (find_identifier(ctx.code[i], "chrono") != std::string::npos ||
        has_call(ctx.code[i], "clock_gettime")) {
      report(ctx, out, opts, i + 1, kTimingDiscipline,
             "direct std::chrono/clock_gettime in a kernel/serving path; "
             "take timestamps via obs/timing.h (monotonic_ns, "
             "process_cpu_ms, wait_for_ns) so all readings share one clock "
             "and epoch");
    }
  }
}

void rule_rng_discipline(const FileContext& ctx, const Options& opts,
                         std::vector<Violation>* out) {
  if (starts_with(ctx.path, "src/util/rng")) return;
  static const char* kBanned[] = {"random_device", "mt19937", "mt19937_64",
                                  "default_random_engine"};
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    bool hit = has_call(line, "rand") || has_call(line, "srand");
    for (const char* ident : kBanned) {
      hit = hit || find_identifier(line, ident) != std::string::npos;
    }
    if (hit) {
      report(ctx, out, opts, i + 1, kRngDiscipline,
             "non-deterministic randomness source; all randomness must "
             "flow from seeded util::Rng streams");
    }
  }
}

/// Quantized kernel translation units in src/tensor: the int8 GEMM today,
/// plus any future *_i8 / *quant* kernels dropped next to it.
bool is_quant_kernel(const std::string& p) {
  if (!starts_with(p, "src/tensor/")) return false;
  return p.find("i8") != std::string::npos ||
         p.find("quant") != std::string::npos;
}

/// C-style `(float)` / `(double)` cast: the token in parentheses followed
/// by the start of an expression. A declaration parameter list ending in
/// `(float);` does not match.
bool has_c_float_cast(const std::string& line) {
  for (const char* tok : {"(float)", "(double)"}) {
    const std::size_t n = std::char_traits<char>::length(tok);
    for (std::size_t pos = line.find(tok); pos != std::string::npos;
         pos = line.find(tok, pos + 1)) {
      const std::size_t after = skip_spaces(line, pos + n);
      if (after < line.size() &&
          (is_ident_char(line[after]) || line[after] == '(')) {
        return true;
      }
    }
  }
  return false;
}

void rule_quant_dtype_discipline(const FileContext& ctx, const Options& opts,
                                 std::vector<Violation>* out) {
  // Quantized kernels must stay in integer arithmetic end to end; the only
  // int<->float crossings allowed are the sanctioned requant helpers
  // (gemm_i8.cpp requant_value), which carry an explicit
  // hsconas-lint-allow(quant-dtype-discipline) marker. Everything this
  // rule catches — float casts and the float->int rounding family — is a
  // dtype crossing that would silently fork the requantization math.
  if (!is_quant_kernel(ctx.path)) return;
  static const char* kRounders[] = {"lrint",      "lrintf",  "llrint",
                                    "llrintf",    "lround",  "lroundf",
                                    "nearbyint",  "nearbyintf"};
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    bool hit = line.find("static_cast<float>") != std::string::npos ||
               line.find("static_cast<double>") != std::string::npos ||
               has_c_float_cast(line) || has_call(line, "float") ||
               has_call(line, "double");
    for (const char* fn : kRounders) hit = hit || has_call(line, fn);
    if (hit) {
      report(ctx, out, opts, i + 1, kQuantDtypeDiscipline,
             "int<->float conversion in a quantized kernel; dtype "
             "crossings belong in the sanctioned requant helpers "
             "(marked hsconas-lint-allow(quant-dtype-discipline))");
    }
  }
}

void rule_log_no_stdio(const FileContext& ctx, const Options& opts,
                       std::vector<Violation>* out) {
  if (!starts_with(ctx.path, "src/")) return;  // CLIs/tests may print
  if (starts_with(ctx.path, "src/util/logging")) return;  // the sink itself
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    const bool stream_hit =
        line.find("std::cout") != std::string::npos ||
        line.find("std::cerr") != std::string::npos ||
        line.find("std::clog") != std::string::npos;
    const bool call_hit = has_call(line, "printf") || has_call(line, "puts") ||
                          has_stdout_call(line, "fprintf") ||
                          has_stdout_call(line, "fputs");
    if (stream_hit || call_hit) {
      report(ctx, out, opts, i + 1, kLogNoStdio,
             "direct stdout/stderr output in library code; use the "
             "structured HSCONAS_LOG_* macros (util/logging.h)");
    }
  }
}

void rule_trace_scope_in_header(const FileContext& ctx, const Options& opts,
                                std::vector<Violation>* out) {
  if (!is_header(ctx.path) || ctx.path == "src/obs/trace.h") return;
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (find_identifier(ctx.code[i], "HSCONAS_TRACE_SCOPE") !=
        std::string::npos) {
      report(ctx, out, opts, i + 1, kTraceScopeInHeader,
             "HSCONAS_TRACE_SCOPE in a header; spans belong in .cpp files "
             "so the compile-time kill switch stays effective");
    }
  }
}

void rule_include_pragma_once(const FileContext& ctx, const Options& opts,
                              std::vector<Violation>* out) {
  if (!is_header(ctx.path)) return;
  for (std::size_t i = 0; i < ctx.raw.size(); ++i) {
    if (line_is_blank_or_stripped(ctx.code[i])) continue;
    const std::size_t first =
        ctx.raw[i].find_first_not_of(" \t");
    if (first == std::string::npos ||
        ctx.raw[i].compare(first, 12, "#pragma once") != 0) {
      report(ctx, out, opts, i + 1, kIncludePragmaOnce,
             "header does not open with #pragma once");
    }
    return;  // only the first code line matters
  }
  report(ctx, out, opts, 1, kIncludePragmaOnce,
         "header does not open with #pragma once");
}

void rule_include_relative_parent(const FileContext& ctx, const Options& opts,
                                  std::vector<Violation>* out) {
  for (std::size_t i = 0; i < ctx.raw.size(); ++i) {
    const std::string& line = ctx.raw[i];
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] != '#') continue;
    if (line.find("#include") == std::string::npos) continue;
    if (line.find("\"../") != std::string::npos) {
      report(ctx, out, opts, i + 1, kIncludeRelativeParent,
             "parent-relative #include; use a root-relative path "
             "(\"subsystem/header.h\")");
    }
  }
}

void rule_include_iostream_in_header(const FileContext& ctx,
                                     const Options& opts,
                                     std::vector<Violation>* out) {
  if (!is_header(ctx.path) || !starts_with(ctx.path, "src/")) return;
  for (std::size_t i = 0; i < ctx.raw.size(); ++i) {
    if (ctx.raw[i].find("#include <iostream>") != std::string::npos) {
      report(ctx, out, opts, i + 1, kIncludeIostreamInHeader,
             "<iostream> in a library header drags static iostream "
             "initialization into every includer; include it in the .cpp");
    }
  }
}

void run_line_rules(const FileContext& ctx, const Options& opts,
                    std::vector<Violation>* out) {
  rule_serial_raw_memcpy(ctx, opts, out);
  rule_serial_pointer_cast(ctx, opts, out);
  rule_scratch_discipline(ctx, opts, out);
  rule_thread_discipline(ctx, opts, out);
  rule_timing_discipline(ctx, opts, out);
  rule_rng_discipline(ctx, opts, out);
  rule_quant_dtype_discipline(ctx, opts, out);
  rule_log_no_stdio(ctx, opts, out);
  rule_trace_scope_in_header(ctx, opts, out);
  rule_include_pragma_once(ctx, opts, out);
  rule_include_relative_parent(ctx, opts, out);
  rule_include_iostream_in_header(ctx, opts, out);
}

}  // namespace

const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {kSerialRawMemcpy,
       "memcpy/memmove outside util/serial (ByteReader-only deserialization)"},
      {kSerialPointerCast,
       "reinterpret_cast outside util/serial (no pointer-cast decoding)"},
      {kScratchDiscipline,
       "no malloc/new[]/ad-hoc vector<float> scratch in tensor/nn kernels "
       "(Workspace-only)"},
      {kThreadDiscipline,
       "no raw std::thread in tensor/nn kernels (util::ThreadPool only)"},
      {kRngDiscipline,
       "no rand()/std::random_device/std::mt19937 outside util/rng "
       "(seeded util::Rng streams only)"},
      {kTimingDiscipline,
       "no direct std::chrono/clock_gettime in tensor/nn kernels "
       "(obs/timing.h clocks only)"},
      {kQuantDtypeDiscipline,
       "no int<->float conversions in src/tensor quant kernels outside the "
       "sanctioned requant helpers"},
      {kLogNoStdio,
       "no stdout/stderr printing in library code (structured logging only)"},
      {kTraceScopeInHeader, "no HSCONAS_TRACE_SCOPE in headers"},
      {kIncludePragmaOnce, "headers must open with #pragma once"},
      {kIncludeRelativeParent, "no parent-relative #include paths"},
      {kIncludeIostreamInHeader, "no <iostream> in library headers"},
      // Pass 2 — semantic rules (cross-line/cross-file; see semantic.h).
      {"unchecked-error-discipline",
       "no discarded results of [[nodiscard]]/Error/Status-returning "
       "functions in src/ ((void) marks an explicit discard)"},
      {"lock-discipline",
       "no raw .lock()/.unlock() on mutexes outside RAII guards in src/"},
      // Pass 3 — include-graph layering (see layers.h; needs --layers).
      {"layer-forbidden-edge",
       "module-level #include edges must be sanctioned by "
       "tools/lint/layers.txt"},
      {"layer-cycle", "the module dependency graph must stay acyclic"},
      {"layer-unmapped-file",
       "every src/ file must belong to a module in the layering spec"},
  };
  return kRules;
}

bool rule_enabled(const Options& opts, const std::string& rule) {
  if (std::find(opts.disabled.begin(), opts.disabled.end(), rule) !=
      opts.disabled.end()) {
    return false;
  }
  return opts.only.empty() ||
         std::find(opts.only.begin(), opts.only.end(), rule) !=
             opts.only.end();
}

std::vector<Violation> lint_file(const std::string& path,
                                 const std::string& contents,
                                 const Options& opts) {
  const FileContext ctx = make_file_context(path, contents);
  std::vector<Violation> out;
  run_line_rules(ctx, opts, &out);
  // Single-file mode indexes declarations from this file alone; the tree
  // walk below builds the index across every header first.
  const SemanticIndex index = build_semantic_index({ctx});
  run_semantic_rules(ctx, index, opts, &out);
  return out;
}

std::vector<Violation> lint_tree(const std::string& root,
                                 const Options& opts) {
  const std::vector<FileContext> files =
      load_tree(root, {"src", "tools", "tests"});
  const SemanticIndex index = build_semantic_index(files);
  std::vector<Violation> out;
  for (const FileContext& ctx : files) {
    run_line_rules(ctx, opts, &out);
    run_semantic_rules(ctx, index, opts, &out);
  }
  std::sort(out.begin(), out.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

Baseline parse_baseline(const std::string& text) {
  Baseline baseline;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    std::size_t count = 0;
    std::string rule, path;
    if (!(fields >> count >> rule >> path) || count == 0) {
      throw Error("hsconas_lint: malformed baseline line " +
                  std::to_string(lineno) + ": '" + line + "'");
    }
    baseline[{path, rule}] += count;
  }
  return baseline;
}

Baseline load_baseline(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return {};
  return parse_baseline(std::string(std::istreambuf_iterator<char>(f),
                                    std::istreambuf_iterator<char>()));
}

std::string format_baseline(const std::vector<Violation>& violations) {
  Baseline counts;
  for (const Violation& v : violations) ++counts[{v.file, v.rule}];
  std::string out =
      "# hsconas_lint baseline — accepted pre-existing debt, one\n"
      "# `count rule-id path` entry per (file, rule). Regenerate with\n"
      "# `hsconas_lint --root . --write-baseline <path>` after paying\n"
      "# debt down; new violations must not be added here.\n";
  for (const auto& [key, count] : counts) {
    out += std::to_string(count) + " " + key.second + " " + key.first + "\n";
  }
  return out;
}

std::vector<Violation> apply_baseline(
    const std::vector<Violation>& violations, const Baseline& baseline,
    std::vector<std::string>* ratchet_notes) {
  Baseline counts;
  for (const Violation& v : violations) ++counts[{v.file, v.rule}];

  std::vector<Violation> out;
  for (const Violation& v : violations) {
    const auto it = baseline.find({v.file, v.rule});
    const std::size_t allowed = it == baseline.end() ? 0 : it->second;
    // All-or-nothing per (file, rule): a count over baseline reports every
    // occurrence, because line numbers cannot identify which one is new.
    if (counts[{v.file, v.rule}] > allowed) out.push_back(v);
  }
  if (ratchet_notes != nullptr) {
    for (const auto& [key, allowed] : baseline) {
      const auto it = counts.find(key);
      const std::size_t actual = it == counts.end() ? 0 : it->second;
      if (actual < allowed) {
        ratchet_notes->push_back(
            key.first + ": " + key.second + " baseline is " +
            std::to_string(allowed) + " but only " + std::to_string(actual) +
            " remain; ratchet the baseline down");
      }
    }
  }
  return out;
}

std::string format_violation(const Violation& v) {
  return v.file + ":" + std::to_string(v.line) + " " + v.rule + " " +
         v.message;
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string format_violations_json(const std::vector<Violation>& active,
                                   std::size_t baselined,
                                   const std::vector<std::string>& notes) {
  // Hand-rolled so the lint library stays layered below hsconas_util
  // (schema "hsconas.lint.v1", consumed by obs_report-style tooling).
  std::string out = "{\n  \"schema\": \"hsconas.lint.v1\",\n";
  out += "  \"violations\": [";
  for (std::size_t i = 0; i < active.size(); ++i) {
    const Violation& v = active[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": ";
    append_json_escaped(out, v.file);
    out += ", \"line\": " + std::to_string(v.line) + ", \"rule\": ";
    append_json_escaped(out, v.rule);
    out += ", \"message\": ";
    append_json_escaped(out, v.message);
    out += "}";
  }
  out += active.empty() ? "],\n" : "\n  ],\n";
  out += "  \"violation_count\": " + std::to_string(active.size()) + ",\n";
  out += "  \"baselined_count\": " + std::to_string(baselined) + ",\n";
  out += "  \"notes\": [";
  for (std::size_t i = 0; i < notes.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    append_json_escaped(out, notes[i]);
  }
  out += notes.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace hsconas::lint
